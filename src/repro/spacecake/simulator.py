"""SimRuntime: Hinch on virtual time, on the SpaceCAKE machine model.

The simulator reuses, unchanged, the pieces that define Hinch's
semantics — :class:`~repro.hinch.scheduler.DataflowScheduler` (readiness,
pipeline depth, reconfiguration drain), :class:`~repro.hinch.manager.
ManagerRuntime` (event handling), :class:`~repro.hinch.runtime.
ComponentHost` (component lifecycle and splicing) — and replaces only the
notion of time: a job dispatched to a core occupies it for the job's cost
in cycles, computed by the :class:`~repro.spacecake.costmodel.CostModel`
plus cache accounting.

Two execution modes:

* ``execute=False`` (default, used by the benchmarks): components do not
  run; only costs flow.  Components whose class sets ``always_execute``
  (event timers driving reconfiguration experiments) still run.
* ``execute=True``: components run functionally with real data, so tests
  can assert that simulated scheduling produces exactly the same frames
  as the threaded runtime.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.program import Program, ProgramGraph
from repro.errors import SimulationError
from repro.hinch.component import Component, JobContext
from repro.hinch.events import Event, EventBroker
from repro.hinch.jobqueue import Job
from repro.hinch.manager import ManagerRuntime
from repro.hinch.runtime import ComponentHost
from repro.hinch.scheduler import DataflowScheduler, ReconfigPlan
from repro.hinch.stream import StreamStore
from repro.hinch.tracing import TraceEvent, Tracer
from repro.spacecake.cache import CacheStats
from repro.spacecake.costmodel import CostModel, CostParams
from repro.spacecake.devent import EventEngine
from repro.spacecake.machine import Machine, MachineConfig

__all__ = ["SimRuntime", "SimResult", "JobPlan", "SLOT_BUCKETS"]

#: Region granularity of the cache model: every stream slot is split into
#: this many equal buckets; a job touches the buckets its slice covers.
#: Disjoint slice regions therefore never share cache residency, while a
#: whole-object producer feeding sliced consumers (and vice versa) is
#: classified per region — the behaviours the paper's cache-miss analysis
#: depends on.
SLOT_BUCKETS = 64


def _slot_buckets(slice_info: tuple[int, int] | None) -> range:
    """Bucket indices a component's slice covers (all, when unsliced)."""
    if slice_info is None:
        return range(SLOT_BUCKETS)
    index, total = slice_info
    lo = index * SLOT_BUCKETS // total
    hi = max(lo + 1, (index + 1) * SLOT_BUCKETS // total)
    return range(lo, min(hi, SLOT_BUCKETS))


class JobPlan:
    """Precompiled cost recipe for one task-graph node.

    ``SimRuntime._job_cycles`` used to re-derive, for *every simulated
    job*: the node's kind, its component instances, each instance's
    :class:`~repro.spacecake.costmodel.JobCost`, the alias-resolved
    stream name of every port, the slot-bucket range of the instance's
    slice, and the per-bucket byte count.  None of that depends on the
    iteration or the core — only on the :class:`ProgramGraph` — so a
    plan is compiled once per node when the graph is (re)built and only
    the cache accounting remains per-job.  Plans are rebuilt on
    reconfiguration (``SimRuntime.on_reconfigure``) because splicing
    changes the graph, the alias map, and the set of live instances.

    ``fixed_cycles``
        Non-None for barrier / manager pseudo-nodes: the whole job cost
        (before the core-speed division).
    ``overhead_cycles``
        Per-job runtime overhead (dispatch + sync), for task nodes.
    ``instances``
        One ``(compute_cycles, traffic)`` pair per grouped component
        instance; ``traffic`` is a tuple of
        ``(stream, bucket_start, bucket_stop, bytes_per_bucket, write)``
        with the stream name already alias-resolved and the per-bucket
        byte part already truncated to int, exactly as the unbatched
        loop did per job.
    ``manager``
        ``(qname, phase)`` for manager pseudo-nodes, else None.
    ``run_instances``
        The instance descriptors whose component actually executes at
        completion time — pre-filtered by the runtime's ``execute`` flag
        and the classes' ``always_execute``, both fixed between graph
        rebuilds.  Empty for the common cost-only case, so completion
        does no per-job instance walking at all.
    """

    __slots__ = (
        "fixed_cycles", "overhead_cycles", "instances", "manager",
        "run_instances",
    )

    def __init__(
        self,
        *,
        fixed_cycles: float | None = None,
        overhead_cycles: float = 0.0,
        instances: tuple[tuple[float, tuple[tuple[str, int, int, int, bool], ...]], ...] = (),
        manager: tuple[str, str] | None = None,
        run_instances: tuple = (),
    ) -> None:
        self.fixed_cycles = fixed_cycles
        self.overhead_cycles = overhead_cycles
        self.instances = instances
        self.manager = manager
        self.run_instances = run_instances

    @classmethod
    def compile(cls, node, cost_model: CostModel, overhead_cycles: float,
                aliases: Mapping[str, str], runnable=None) -> "JobPlan":
        """Compile the plan for one :class:`TaskNode`.

        ``runnable`` is an optional predicate over component instances:
        those satisfying it are recorded in ``run_instances`` for
        functional execution at completion time.
        """
        params = cost_model.params
        if node.kind == "barrier":
            return cls(fixed_cycles=params.barrier_cycles)
        if node.kind in ("manager_enter", "manager_exit"):
            return cls(
                fixed_cycles=params.manager_invoke_cycles,
                manager=(node.payload, node.kind.removeprefix("manager_")),
            )
        payload = node.payload
        instances = payload if isinstance(payload, tuple) else (payload,)
        inst_plans = []
        for instance in instances:
            cost = cost_model.job_cost(instance)
            buckets = _slot_buckets(instance.slice)
            nbuckets = len(buckets)
            traffic = tuple(
                (
                    aliases.get(stream, stream),
                    buckets.start,
                    buckets.stop,
                    int(t.nbytes / nbuckets),
                    t.write,
                )
                for t in cost.traffic
                if (stream := instance.streams.get(t.port)) is not None
            )
            inst_plans.append((cost.compute_cycles, traffic))
        run_instances = (
            tuple(i for i in instances if runnable(i)) if runnable is not None else ()
        )
        return cls(
            overhead_cycles=overhead_cycles,
            instances=tuple(inst_plans),
            run_instances=run_instances,
        )


@dataclass
class SimResult:
    """Outcome of one simulated run (times in cycles)."""

    cycles: float
    completed_iterations: int
    reconfig_count: int
    trace: Tracer
    cache_stats: CacheStats
    core_busy_cycles: list[float]
    utilization: float
    components: dict[str, Component]
    jobs_executed: int
    events_handled: int = 0
    components_created: int = 0
    #: (resume_iteration, option states) per applied reconfiguration
    reconfig_log: list[tuple[int, dict[str, bool]]] = field(default_factory=list)

    def option_exposure(self, option: str, *, initial: bool,
                        total_iterations: int) -> int:
        """Iterations spent with ``option`` enabled over the whole run."""
        enabled_iters = 0
        prev = 0
        state = initial
        for resume, states in self.reconfig_log:
            if state:
                enabled_iters += resume - prev
            prev = resume
            state = states.get(option, state)
        if state:
            enabled_iters += total_iterations - prev
        return enabled_iters

    @property
    def nodes(self) -> int:
        return len(self.core_busy_cycles)


class SimRuntime:
    """Simulate a Program on an N-core SpaceCAKE tile."""

    def __init__(
        self,
        program: Program,
        registry: Mapping[str, type[Component]],
        *,
        nodes: int = 1,
        pipeline_depth: int = 5,
        max_iterations: int,
        execute: bool = False,
        cost_params: CostParams | None = None,
        machine: MachineConfig | None = None,
        trace: bool = False,
        option_states: Mapping[str, bool] | None = None,
        group_chains: bool = False,
    ) -> None:
        self.program = program
        self.registry = registry
        self.execute = execute
        self.group_chains = group_chains
        self.engine = EventEngine()
        self.machine = Machine(
            machine if machine is not None else MachineConfig(nodes=nodes)
        )
        if machine is not None and machine.nodes != nodes:
            raise SimulationError("nodes and machine.nodes disagree")
        self.cost_model = CostModel(registry, cost_params)
        self.broker = EventBroker()
        self.streams = StreamStore()
        self.tracer = Tracer(enabled=trace)
        self.host = ComponentHost(program, registry)

        self.pg: ProgramGraph = self._make_pg(option_states)
        self._target_states: dict[str, bool] = dict(self.pg.option_states)
        self._precreated: dict[str, Component] = {}
        self.host.populate(self.pg.active_components)
        self.managers = {
            qname: ManagerRuntime(info, self.broker, self)
            for qname, info in program.managers.items()
        }
        self.scheduler = DataflowScheduler(
            self.pg,
            pipeline_depth=pipeline_depth,
            max_iterations=max_iterations,
            hooks=self,
        )
        self._pending: deque[Job] = deque()  # the central job queue
        self._stall_until = 0.0  # reconfiguration splice window
        #: latest stall deadline a wakeup is already scheduled for, so a
        #: reconfiguration stall enqueues exactly one pending wakeup no
        #: matter how many blocked dispatches hit it
        self._stall_wakeup_until = 0.0
        self._keys_by_iter: dict[int, set[Any]] = {}
        self.jobs_executed = 0
        self._ran = False
        #: per-job runtime overhead: constant for the whole run (depends
        #: only on the node count)
        self._overhead_cycles = self.cost_model.overhead_cycles(
            nodes=self.machine.nodes
        )
        self._plans: dict[str, JobPlan] = {}
        self._rebuild_plans()
        #: (resume_iteration, option states) per applied reconfiguration
        self.reconfig_log: list[tuple[int, dict[str, bool]]] = []

    def _rebuild_plans(self) -> None:
        """(Re)compile one :class:`JobPlan` per node of the current graph."""
        cost_model = self.cost_model
        overhead = self._overhead_cycles
        aliases = self.pg.aliases
        live = self.host.live

        def runnable(instance) -> bool:
            return self.execute or type(live[instance.instance_id]).always_execute

        self._plans = {
            node.node_id: JobPlan.compile(
                node, cost_model, overhead, aliases, runnable
            )
            for node in self.pg.graph
        }

    def _make_pg(self, option_states: Mapping[str, bool] | None) -> ProgramGraph:
        pg = self.program.build_graph(option_states)
        if self.group_chains:
            from repro.hinch.grouping import group_linear_chains

            pg = group_linear_chains(pg)
        return pg

    # -- SchedulerHooks ----------------------------------------------------------

    def on_iteration_complete(self, iteration: int) -> None:
        self.streams.release_iteration(iteration)
        keys = self._keys_by_iter.pop(iteration, None)
        if keys:
            self.machine.cache.evict_many(keys)

    def on_reconfigure(
        self, plans: list[ReconfigPlan], resume_iteration: int
    ) -> ProgramGraph:
        states = dict(self.pg.option_states)
        for plan in plans:
            states.update(plan.changes)
        new_pg = self._make_pg(states)
        added, removed = self.host.splice(new_pg.active_components, self._precreated)
        for component in self._precreated.values():
            component.teardown()
        self._precreated.clear()
        self.pg = new_pg
        self._target_states = dict(states)
        self.reconfig_log.append((resume_iteration, dict(states)))
        # Splicing happens while the graph is quiescent and stalls the
        # whole tile (the paper: two "simple actions" — add components,
        # synchronize them — but they serialize the machine).
        splice = self.cost_model.params.reconfig_splice_cycles * max(
            1, len(added) + len(removed)
        )
        self._stall_until = max(self._stall_until, self.engine.now + splice)
        self._rebuild_plans()
        return new_pg

    # -- ReconfigController ---------------------------------------------------------

    def target_option_state(self, option_qname: str) -> bool:
        return self._target_states[option_qname]

    def apply_option_changes(self, manager: str, changes: dict[str, bool]) -> None:
        effective = {
            opt: state
            for opt, state in changes.items()
            if self._target_states.get(opt) != state
        }
        if not effective:
            return
        self._target_states.update(effective)
        for opt, state in effective.items():
            if state:
                # Pre-create while the subgraph is still active: costs no
                # tile time (a host CPU concern in the paper's model).
                for member in self.program.options[opt].members:
                    if (
                        member not in self.host.live
                        and member not in self._precreated
                    ):
                        self._precreated[member] = self.host.create(member)
        self.scheduler.request_reconfig(ReconfigPlan(manager=manager, changes=effective))

    def send_reconfigure_request(self, manager: str, request: str) -> None:
        for member in self.program.managers[manager].members:
            component = self.host.live.get(member)
            if component is not None:
                component.reconfigure(request)

    # -- event injection ---------------------------------------------------------------

    def post_event(self, queue: str, name: str, payload: Any = None) -> None:
        self.broker.post(queue, Event(name=name, payload=payload))

    # -- cost accounting ------------------------------------------------------------------

    def _job_cycles(self, job: Job, core: int) -> float:
        # All graph-dependent work (kind dispatch, instance grouping, cost
        # lookup, alias resolution, slot bucketing) was precompiled into
        # the node's JobPlan; only the cache accounting is per-job.
        # Grouped nodes (paper §4.1) carry several instances executed
        # back-to-back on one core: one job overhead, and their internal
        # stream traffic naturally hits L1 (write then immediate same-core
        # read of the same keys).
        plan = self._plans[job.node_id]
        speed = self.machine.speed(core)
        fixed = plan.fixed_cycles
        if fixed is not None:
            return fixed / speed
        cycles = plan.overhead_cycles / speed
        iteration = job.iteration
        keyset = self._keys_by_iter.setdefault(iteration, set())
        access_traffic = self.machine.cache.access_traffic
        for compute_cycles, traffic in plan.instances:
            cycles += compute_cycles / speed
            if traffic:
                cycles = access_traffic(core, iteration, traffic, cycles, keyset)
        return cycles

    # -- execution ------------------------------------------------------------------------

    def _run_job_effects(self, job: Job, plan: JobPlan) -> None:
        """Functional side of the job, applied at its completion time.

        The manager target and the (execute/always_execute-filtered) set
        of instances to run were precompiled into the node's plan; the
        common cost-only job skips this method entirely.
        """
        manager = plan.manager
        if manager is not None:
            self.managers[manager[0]].invoke(job.iteration, manager[1])
            return
        for instance in plan.run_instances:
            component = self.host.live[instance.instance_id]
            ctx = JobContext(
                instance,
                job.iteration,
                self.streams,
                self.broker,
                self.pg.aliases,
                stop_requester=self.scheduler.request_stop,
            )
            component.run(ctx)

    def _dispatch(self) -> None:
        engine = self.engine
        now = engine.now
        if now < self._stall_until:
            # The tile is splicing; try again when it finishes.  Several
            # completions can hit the stall at the same instant — one
            # pending wakeup suffices (and keeps the heap from filling
            # with redundant events during long splice windows).
            if self._stall_wakeup_until < self._stall_until:
                self._stall_wakeup_until = self._stall_until
                engine.schedule_at(self._stall_until, self._dispatch)
            return
        pending = self._pending
        machine = self.machine
        while pending:
            core = machine.acquire_core()
            if core is None:
                return
            job = pending.popleft()
            cycles = self._job_cycles(job, core)
            # A completion record instead of a per-job closure: one small
            # tuple on the heap, dispatched to the single bound handler.
            engine.schedule(cycles, self._finish, (job, core, cycles, now))

    def _finish(self, record: tuple[Job, int, float, float]) -> None:
        """Completion handler for one dispatched job (an engine record)."""
        job, core, cycles, start = record
        self.machine.release_core(core, cycles)
        plan = self._plans[job.node_id]
        if plan.manager is not None or plan.run_instances:
            self._run_job_effects(job, plan)
        self.jobs_executed += 1
        if self.tracer.enabled:
            self.tracer.record(
                TraceEvent(
                    node_id=job.node_id,
                    iteration=job.iteration,
                    worker=core,
                    start=start,
                    end=self.engine.now,
                    kind=self.pg.graph.node(job.node_id).kind
                    if job.node_id in self.pg.graph
                    else "task",
                )
            )
        self._pending.extend(self.scheduler.complete(job))
        self._dispatch()

    def run(self) -> SimResult:
        """Simulate to completion; returns cycle counts and statistics."""
        if self._ran:
            raise SimulationError("SimRuntime instances are single-use")
        self._ran = True
        self._pending.extend(self.scheduler.start())
        self._dispatch()
        cycles = self.engine.run()
        if not self.scheduler.done:
            raise SimulationError(
                "simulation deadlocked: event heap empty but scheduler "
                f"has {self.scheduler.in_flight} iterations in flight"
            )
        return SimResult(
            cycles=cycles,
            completed_iterations=self.scheduler.completed_iterations,
            reconfig_count=self.scheduler.reconfig_count,
            trace=self.tracer,
            cache_stats=self.machine.cache.stats,
            core_busy_cycles=list(self.machine.busy_cycles),
            utilization=self.machine.utilization(cycles) if cycles else 0.0,
            components=dict(self.host.live),
            jobs_executed=self.jobs_executed,
            events_handled=sum(m.events_handled for m in self.managers.values()),
            components_created=self.host.created_total,
            reconfig_log=list(self.reconfig_log),
        )
