"""The tile: N TriMedia-class cores around a shared L2.

The machine tracks core availability and busy-cycle accounting; the cache
hierarchy lives in :class:`~repro.spacecake.cache.CacheModel`.  Core
allocation is FIFO over the free list, which models Hinch's policy (any
idle processor takes the oldest ready job) and keeps simulations
deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.spacecake.cache import CacheConfig, CacheModel

__all__ = ["MachineConfig", "Machine"]


@dataclass(frozen=True)
class MachineConfig:
    """One tile: up to 9 TriMedia cores in the paper's experiments.

    ``core_speeds`` models the paper's Cell direction (§6: "fast
    specialized vector engines"): per-core compute-speed multipliers
    (1.0 = a baseline TriMedia; 4.0 = a 4x faster vector engine).  Speed
    scales compute and runtime-overhead cycles; memory latency is a
    property of the hierarchy and stays unscaled.
    """

    nodes: int = 1
    cache: CacheConfig = field(default_factory=CacheConfig)
    core_speeds: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise SimulationError(f"nodes must be >= 1, got {self.nodes}")
        if self.core_speeds is not None:
            if len(self.core_speeds) != self.nodes:
                raise SimulationError(
                    f"core_speeds has {len(self.core_speeds)} entries for "
                    f"{self.nodes} nodes"
                )
            if any(s <= 0 for s in self.core_speeds):
                raise SimulationError("core speeds must be > 0")

    def speed(self, core: int) -> float:
        if self.core_speeds is None:
            return 1.0
        return self.core_speeds[core]


class Machine:
    """Core allocation and utilization accounting for one simulation."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.cache = CacheModel(config.nodes, config.cache)
        self._free: deque[int] = deque(range(config.nodes))
        self._busy: set[int] = set()
        self.busy_cycles = [0.0] * config.nodes
        self.jobs_run = [0] * config.nodes

    @property
    def nodes(self) -> int:
        return self.config.nodes

    def speed(self, core: int) -> float:
        return self.config.speed(core)

    @property
    def idle_count(self) -> int:
        return len(self._free)

    def acquire_core(self) -> int | None:
        """Grab an idle core (FIFO), or None if all are busy."""
        if not self._free:
            return None
        core = self._free.popleft()
        self._busy.add(core)
        return core

    def release_core(self, core: int, busy_cycles: float) -> None:
        if core not in self._busy:
            raise SimulationError(f"release of non-busy core {core}")
        self._busy.discard(core)
        self._free.append(core)
        self.busy_cycles[core] += busy_cycles
        self.jobs_run[core] += 1

    def utilization(self, total_cycles: float) -> float:
        """Aggregate busy fraction over a run of ``total_cycles``."""
        if total_cycles <= 0:
            return 0.0
        return sum(self.busy_cycles) / (total_cycles * self.nodes)
