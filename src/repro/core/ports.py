"""Port declarations for component classes.

A component has "a fixed number of i/o ports to which streams can be
connected" (paper §2.3a).  The XSPCL text binds *port names* to *stream
names* without stating direction — direction is a property of the
component class, declared here and registered in the component registry.
The validator and the program builder consult these declarations to
orient stream edges and to reject malformed bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.formats import FormatDecl, parse_format
from repro.errors import ComponentError

__all__ = ["PortSpec"]


@dataclass(frozen=True)
class PortSpec:
    """Declared ports (and optional parameter schema) of a component class.

    ``required_params`` lists init-parameter names that must be supplied;
    ``optional_params`` those that may be.  An empty ``optional_params``
    with ``open_params=True`` accepts anything (useful for generic
    wrapper components).

    ``formats`` maps port names to format declarations (see
    :mod:`repro.core.formats` for the grammar).  Ports without an entry
    fall back to first-write inference at runtime and draw an X505 info
    from the format solver.
    """

    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    required_params: tuple[str, ...] = ()
    optional_params: tuple[str, ...] = ()
    open_params: bool = False
    formats: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        overlap = set(self.inputs) & set(self.outputs)
        if overlap:
            raise ComponentError(
                f"ports cannot be both input and output: {sorted(overlap)}"
            )
        for port, decl in self.formats.items():
            if port not in self.inputs and port not in self.outputs:
                raise ComponentError(
                    f"format declared for unknown port {port!r}"
                )
            parse_format(decl)  # raises FormatError on a bad declaration

    def format_decl(self, port: str) -> FormatDecl | None:
        """Parsed format declaration of ``port`` (None when undeclared)."""
        decl = self.formats.get(port)
        return parse_format(decl) if decl is not None else None

    @property
    def all_ports(self) -> tuple[str, ...]:
        return self.inputs + self.outputs

    def is_input(self, port: str) -> bool:
        return port in self.inputs

    def is_output(self, port: str) -> bool:
        return port in self.outputs

    def check_params(self, class_name: str, names: set[str]) -> None:
        """Raise :class:`ComponentError` if ``names`` violates the schema."""
        missing = set(self.required_params) - names
        if missing:
            raise ComponentError(
                f"component class {class_name!r} missing required params "
                f"{sorted(missing)}"
            )
        if not self.open_params:
            allowed = set(self.required_params) | set(self.optional_params)
            unknown = names - allowed
            if unknown:
                raise ComponentError(
                    f"component class {class_name!r} got unknown params "
                    f"{sorted(unknown)}"
                )
