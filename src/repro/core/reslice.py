"""Re-slicing: rewrite a Program's data-parallel replication widths.

The expander freezes slice counts at build time: a ``parallel`` block
with ``n`` copies becomes ``n`` :class:`ComponentInstance` leaves with
``slice=(i, n)`` and ids ``def[0] .. def[n-1]``.  The paper's
reconfiguration interface, however, explicitly allows telling "a
component which part of the input it has to process" — the slice
assignment is runtime state, not structure.  This module exploits that:
given a map ``{definition_id: new_total}`` it produces a *new* Program
whose eligible parallel groups carry the requested number of copies,
leaving everything else (streams, managers, options, params)
structurally identical.

Eligibility is structural only: a group qualifies when it is an
``IRParallel`` of plain leaves sharing one ``definition_id`` whose
slices tile ``0..n-1`` exactly and whose copies are identical except for
``instance_id``/``slice`` — i.e. replication carries no per-copy
configuration that a different width could not reproduce.  Crossdep
regions never qualify (their halo edges encode neighbour exchange whose
semantics depend on the copy count the *author* chose).  Whether a
component's *state* tolerates re-sharding is a runtime concern judged by
the caller (see ``Component.slice_elastic``); this module only answers
the structural question.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.core.program import (
    ComponentInstance,
    IRCrossdep,
    IRLeaf,
    IRManager,
    IRNode,
    IROption,
    IRParallel,
    IRSeries,
    ManagerInfo,
    OptionInfo,
    Program,
)
from repro.errors import ReconfigurationError

__all__ = ["SliceGroup", "slice_groups", "reslice"]


@dataclass(frozen=True)
class SliceGroup:
    """One structurally re-sliceable parallel replication group."""

    definition_id: str
    class_name: str
    #: current number of copies
    total: int
    #: instance ids of the current copies, index order
    members: tuple[str, ...]


def _group_of(node: IRParallel) -> SliceGroup | None:
    """The slice group this parallel block represents, if it is one."""
    leaves: list[ComponentInstance] = []
    for child in node.children:
        if not isinstance(child, IRLeaf):
            return None
        leaves.append(child.instance)
    if len(leaves) < 2:
        return None
    def_ids = {inst.definition_id for inst in leaves}
    if len(def_ids) != 1:
        return None
    def_id = def_ids.pop()
    n = len(leaves)
    slices = [inst.slice for inst in leaves]
    if slices != [(i, n) for i in range(n)]:
        return None
    if [inst.instance_id for inst in leaves] != [
        f"{def_id}[{i}]" for i in range(n)
    ]:
        return None
    # Copies must be interchangeable: identical in everything except
    # instance_id and slice, else a different width cannot reproduce
    # whatever per-copy configuration the expansion baked in.
    template = leaves[0]
    for inst in leaves[1:]:
        if (
            inst.class_name != template.class_name
            or inst.params != template.params
            or inst.streams != template.streams
            or inst.reconfigure != template.reconfigure
            or inst.manager != template.manager
            or inst.options != template.options
            or inst.port_formats != template.port_formats
        ):
            return None
    return SliceGroup(
        definition_id=def_id,
        class_name=template.class_name,
        total=n,
        members=tuple(inst.instance_id for inst in leaves),
    )


def slice_groups(program: Program) -> dict[str, SliceGroup]:
    """All structurally re-sliceable groups, keyed by definition id."""
    groups: dict[str, SliceGroup] = {}

    def walk(node: IRNode, in_crossdep: bool) -> None:
        if isinstance(node, IRParallel):
            if not in_crossdep:
                group = _group_of(node)
                if group is not None:
                    groups[group.definition_id] = group
                    return
            for child in node.children:
                walk(child, in_crossdep)
        elif isinstance(node, IRSeries):
            for child in node.children:
                walk(child, in_crossdep)
        elif isinstance(node, IRCrossdep):
            for pb in node.parblocks:
                for copy in pb:
                    walk(copy, True)
        elif isinstance(node, (IRManager, IROption)):
            walk(node.child, in_crossdep)

    walk(program.root, False)
    return groups


def reslice(program: Program, overrides: Mapping[str, int]) -> Program:
    """A new Program with the given groups re-replicated.

    ``overrides`` maps ``definition_id -> new_total``; every key must
    name an eligible group (see :func:`slice_groups`) and every total
    must be >= 1.  The transform is deterministic and idempotent given
    the same cumulative override map, so dispatcher and workers applying
    it independently to the same base program converge on identical
    structure.
    """
    if not overrides:
        return program
    groups = slice_groups(program)
    for def_id, total in overrides.items():
        if def_id not in groups:
            raise ReconfigurationError(
                f"cannot reslice {def_id!r}: not a re-sliceable parallel "
                "group"
            )
        if total < 1:
            raise ReconfigurationError(
                f"cannot reslice {def_id!r} to {total} copies"
            )

    new_components = dict(program.components)
    #: old member ids -> replacement ids, for manager/option remapping
    replaced: dict[str, tuple[str, ...]] = {}

    def rebuild(def_id: str, total: int) -> IRParallel:
        group = groups[def_id]
        template = program.components[group.members[0]]
        for old_id in group.members:
            del new_components[old_id]
        new_ids = tuple(f"{def_id}[{j}]" for j in range(total))
        leaves = []
        for j, new_id in enumerate(new_ids):
            inst = replace(
                template,
                instance_id=new_id,
                slice=(j, total),
                params=dict(template.params),
                streams=dict(template.streams),
                port_formats=dict(template.port_formats),
                port_lines=dict(template.port_lines),
            )
            new_components[new_id] = inst
            leaves.append(IRLeaf(inst))
        for old_id in group.members:
            replaced[old_id] = new_ids
        return IRParallel(tuple(leaves))

    def walk(node: IRNode, in_crossdep: bool) -> IRNode:
        if isinstance(node, IRParallel):
            if not in_crossdep:
                group = _group_of(node)
                if group is not None and group.definition_id in overrides:
                    return rebuild(
                        group.definition_id, overrides[group.definition_id]
                    )
            return IRParallel(
                tuple(walk(c, in_crossdep) for c in node.children)
            )
        if isinstance(node, IRSeries):
            return IRSeries(
                tuple(walk(c, in_crossdep) for c in node.children)
            )
        if isinstance(node, IRCrossdep):
            return IRCrossdep(
                tuple(
                    tuple(walk(copy, True) for copy in pb)
                    for pb in node.parblocks
                )
            )
        if isinstance(node, IRManager):
            return IRManager(node.qname, walk(node.child, in_crossdep))
        if isinstance(node, IROption):
            return IROption(node.qname, walk(node.child, in_crossdep))
        return node

    new_root = walk(program.root, False)

    def remap(members: tuple[str, ...]) -> tuple[str, ...]:
        out: list[str] = []
        emitted: set[str] = set()
        for member in members:
            if member in replaced:
                for new_id in replaced[member]:
                    if new_id not in emitted:
                        emitted.add(new_id)
                        out.append(new_id)
            else:
                out.append(member)
        return tuple(out)

    new_managers = {
        q: replace(m, members=remap(m.members))
        for q, m in program.managers.items()
    }
    new_options = {
        q: replace(o, members=remap(o.members))
        for q, o in program.options.items()
    }
    return Program(
        program.name,
        new_root,
        new_components,
        new_managers,
        new_options,
        program.registry,
    )
