"""XSPCL XML parser: text -> :class:`~repro.core.ast.Spec`.

Only the standard library ``xml.etree`` is used.  A custom tree builder
records source line numbers on every element so diagnostics can point at
the offending tag — the paper positions XSPCL as a machine-written
intermediate language, but humans debug it.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.core.ast import (
    HANDLER_ACTIONS,
    PARALLEL_SHAPES,
    BodyNode,
    Bypass,
    CallNode,
    ComponentNode,
    EventHandler,
    ManagerNode,
    OptionNode,
    ParallelNode,
    ParamFormal,
    Procedure,
    Spec,
    StreamFormal,
    Value,
)
from repro.errors import ParseError

__all__ = ["parse_string", "parse_file", "parse_value"]


def _parse_xml_with_lines(text: str) -> ET.Element:
    """Parse XML via expat, stamping ``_line`` on every element.

    ``xml.etree``'s C-accelerated parser does not expose the underlying
    expat handle, so we drive expat ourselves and feed a TreeBuilder.
    """
    import xml.parsers.expat as expat

    class _Elem(ET.Element):
        """Python subclass so elements accept a ``_line`` attribute."""

    builder = ET.TreeBuilder(element_factory=_Elem)
    parser = expat.ParserCreate()
    parser.buffer_text = True

    def start(tag: str, attrs: dict[str, str]) -> None:
        element = builder.start(tag, attrs)
        element._line = parser.CurrentLineNumber  # type: ignore[attr-defined]

    parser.StartElementHandler = start
    parser.EndElementHandler = lambda tag: builder.end(tag)
    parser.CharacterDataHandler = lambda data: builder.data(data)
    try:
        parser.Parse(text, True)
    except expat.ExpatError as exc:
        raise ParseError(f"malformed XML: {exc}", line=exc.lineno) from exc
    root = builder.close()
    if root is None:  # pragma: no cover - expat errors out first
        raise ParseError("empty document")
    return root


def _line(elem: ET.Element) -> int | None:
    return getattr(elem, "_line", None)


def _fail(elem: ET.Element, message: str) -> ParseError:
    return ParseError(message, line=_line(elem))


def parse_value(text: str) -> Value:
    """Parse an attribute value to int/float/bool, falling back to str.

    Values containing ``${...}`` placeholders are kept as strings so the
    expander can substitute them.
    """
    if "${" in text:
        return text
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _require_attr(elem: ET.Element, name: str) -> str:
    value = elem.get(name)
    if value is None:
        raise _fail(elem, f"<{elem.tag}> is missing required attribute {name!r}")
    return value


def _parse_component(elem: ET.Element) -> ComponentNode:
    name = _require_attr(elem, "name")
    class_name = _require_attr(elem, "class")
    streams: dict[str, str] = {}
    params: dict[str, Value] = {}
    formats: dict[str, str] = {}
    stream_lines: dict[str, int | None] = {}
    reconfigure: str | None = None
    for child in elem:
        if child.tag == "stream":
            port = _require_attr(child, "port")
            ref = _require_attr(child, "ref")
            if port in streams:
                raise _fail(child, f"duplicate stream binding for port {port!r}")
            streams[port] = ref
            stream_lines[port] = _line(child)
            fmt = child.get("format")
            if fmt is not None:
                formats[port] = fmt
        elif child.tag == "param":
            pname = _require_attr(child, "name")
            if pname in params:
                raise _fail(child, f"duplicate param {pname!r}")
            params[pname] = parse_value(_require_attr(child, "value"))
        elif child.tag == "reconfigure":
            if reconfigure is not None:
                raise _fail(child, "multiple <reconfigure> tags in one component")
            reconfigure = _require_attr(child, "request")
        else:
            raise _fail(child, f"unexpected tag <{child.tag}> inside <component>")
    return ComponentNode(
        name=name,
        class_name=class_name,
        streams=streams,
        params=params,
        reconfigure=reconfigure,
        formats=formats,
        line=_line(elem),
        stream_lines=stream_lines,
    )


def _parse_call(elem: ET.Element) -> CallNode:
    procedure = _require_attr(elem, "procedure")
    name = elem.get("name", procedure)
    streams: dict[str, str] = {}
    params: dict[str, Value] = {}
    for child in elem:
        if child.tag == "stream":
            sname = _require_attr(child, "name")
            if sname in streams:
                raise _fail(child, f"duplicate stream argument {sname!r}")
            streams[sname] = _require_attr(child, "ref")
        elif child.tag == "param":
            pname = _require_attr(child, "name")
            if pname in params:
                raise _fail(child, f"duplicate param argument {pname!r}")
            params[pname] = parse_value(_require_attr(child, "value"))
        else:
            raise _fail(child, f"unexpected tag <{child.tag}> inside <call>")
    return CallNode(
        procedure=procedure, name=name, streams=streams, params=params,
        line=_line(elem),
    )


def _parse_parallel(elem: ET.Element) -> ParallelNode:
    shape = elem.get("shape", "task")
    if shape not in PARALLEL_SHAPES:
        raise _fail(
            elem, f"unknown parallel shape {shape!r}; expected one of {PARALLEL_SHAPES}"
        )
    n_raw = elem.get("n")
    n: Value | None = parse_value(n_raw) if n_raw is not None else None
    parblocks: list[tuple[BodyNode, ...]] = []
    for child in elem:
        if child.tag != "parblock":
            raise _fail(child, f"unexpected tag <{child.tag}> inside <parallel>")
        parblocks.append(_parse_body(child))
    if not parblocks:
        raise _fail(elem, "<parallel> needs at least one <parblock>")
    if shape == "slice" and len(parblocks) != 1:
        raise _fail(elem, 'shape="slice" allows exactly one <parblock>')
    if shape in ("slice", "crossdep") and n is None:
        raise _fail(elem, f'shape="{shape}" requires attribute n')
    if shape == "task" and n is not None:
        raise _fail(elem, 'shape="task" does not take attribute n')
    return ParallelNode(
        shape=shape, parblocks=tuple(parblocks), n=n, line=_line(elem)
    )


def _parse_handler(elem: ET.Element) -> EventHandler:
    event = _require_attr(elem, "event")
    action = _require_attr(elem, "action")
    if action not in HANDLER_ACTIONS:
        raise _fail(
            elem, f"unknown handler action {action!r}; expected one of {HANDLER_ACTIONS}"
        )
    option = elem.get("option")
    target = elem.get("target")
    request = elem.get("request")
    if action in ("enable", "disable", "toggle") and option is None:
        raise _fail(elem, f'action="{action}" requires attribute option')
    if action == "forward" and target is None:
        raise _fail(elem, 'action="forward" requires attribute target')
    if action == "reconfigure" and request is None:
        raise _fail(elem, 'action="reconfigure" requires attribute request')
    return EventHandler(
        event=event, action=action, option=option, target=target, request=request,
        line=_line(elem),
    )


def _parse_option(elem: ET.Element) -> OptionNode:
    name = _require_attr(elem, "name")
    enabled_raw = elem.get("enabled", "true").lower()
    if enabled_raw not in ("true", "false"):
        raise _fail(elem, f"enabled must be true/false, got {enabled_raw!r}")
    bypasses: list[Bypass] = []
    body_children: list[ET.Element] = []
    for child in elem:
        if child.tag == "bypass":
            bypasses.append(
                Bypass(
                    src=_require_attr(child, "from"),
                    dst=_require_attr(child, "to"),
                    line=_line(child),
                )
            )
        else:
            body_children.append(child)
    body = tuple(_parse_body_nodes(body_children))
    if not body:
        raise _fail(elem, f"option {name!r} has an empty body")
    return OptionNode(
        name=name,
        body=body,
        enabled=enabled_raw == "true",
        bypasses=tuple(bypasses),
        line=_line(elem),
    )


def _parse_manager(elem: ET.Element) -> ManagerNode:
    name = _require_attr(elem, "name")
    queue = _require_attr(elem, "queue")
    handlers: list[EventHandler] = []
    body: tuple[BodyNode, ...] | None = None
    for child in elem:
        if child.tag == "on":
            handlers.append(_parse_handler(child))
        elif child.tag == "body":
            if body is not None:
                raise _fail(child, "multiple <body> tags inside <manager>")
            body = _parse_body(child)
        else:
            raise _fail(child, f"unexpected tag <{child.tag}> inside <manager>")
    if body is None:
        raise _fail(elem, "<manager> requires a <body>")
    return ManagerNode(
        name=name, queue=queue, handlers=tuple(handlers), body=body,
        line=_line(elem),
    )


_BODY_DISPATCH = {
    "component": _parse_component,
    "call": _parse_call,
    "parallel": _parse_parallel,
    "manager": _parse_manager,
    "option": _parse_option,
}


def _parse_body_nodes(children: list[ET.Element]) -> list[BodyNode]:
    nodes: list[BodyNode] = []
    for child in children:
        handler = _BODY_DISPATCH.get(child.tag)
        if handler is None:
            raise _fail(child, f"unexpected tag <{child.tag}> in a body")
        nodes.append(handler(child))
    return nodes


def _parse_body(elem: ET.Element) -> tuple[BodyNode, ...]:
    return tuple(_parse_body_nodes(list(elem)))


def _parse_procedure(elem: ET.Element) -> Procedure:
    name = _require_attr(elem, "name")
    stream_formals: list[StreamFormal] = []
    param_formals: list[ParamFormal] = []
    body: tuple[BodyNode, ...] | None = None
    for child in elem:
        if child.tag == "params":
            for formal in child:
                if formal.tag == "stream":
                    stream_formals.append(StreamFormal(_require_attr(formal, "name")))
                elif formal.tag == "param":
                    default_raw = formal.get("default")
                    param_formals.append(
                        ParamFormal(
                            _require_attr(formal, "name"),
                            default=parse_value(default_raw)
                            if default_raw is not None
                            else None,
                        )
                    )
                else:
                    raise _fail(formal, f"unexpected tag <{formal.tag}> in <params>")
        elif child.tag == "body":
            if body is not None:
                raise _fail(child, "multiple <body> tags inside <procedure>")
            body = _parse_body(child)
        else:
            raise _fail(child, f"unexpected tag <{child.tag}> inside <procedure>")
    if body is None:
        raise _fail(elem, f"procedure {name!r} has no <body>")
    return Procedure(
        name=name,
        body=body,
        stream_formals=tuple(stream_formals),
        param_formals=tuple(param_formals),
        line=_line(elem),
    )


def parse_string(text: str) -> Spec:
    """Parse XSPCL source text into a :class:`Spec`."""
    root = _parse_xml_with_lines(text)
    if root.tag != "xspcl":
        raise _fail(root, f"root element must be <xspcl>, got <{root.tag}>")
    version = root.get("version", "1.0")
    procedures: dict[str, Procedure] = {}
    for child in root:
        if child.tag != "procedure":
            raise _fail(child, f"unexpected tag <{child.tag}> at top level")
        proc = _parse_procedure(child)
        if proc.name in procedures:
            raise _fail(child, f"duplicate procedure name {proc.name!r}")
        procedures[proc.name] = proc
    return Spec(procedures=procedures, version=version)


def parse_file(path: str | Path) -> Spec:
    """Parse an XSPCL file from disk."""
    return parse_string(Path(path).read_text(encoding="utf-8"))
