"""Abstract syntax tree of an XSPCL specification.

The node set follows the paper's Section 3:

* ``<component>`` — leaf unit of functionality with *stream parameters*
  (port -> stream bindings) and *initialization parameters* (Fig. 2);
* ``<procedure>`` / ``<call>`` — procedural abstraction (Fig. 3);
* ``<parallel shape="task|slice|crossdep">`` with ``<parblock>`` children
  (Fig. 4/5);
* ``<manager>`` + ``<option>`` + ``<on>`` event handlers (Fig. 6);
* implicit series composition of siblings inside any body.

Two reproduction extensions are documented in DESIGN.md:

* ``<option>`` may carry ``<bypass from="X" to="Y"/>`` children: while the
  option is *disabled*, writers of stream ``X`` write directly to ``Y``.
  The paper needs this to reconnect e.g. the first blender to the output
  when the second picture-in-picture is switched off, but does not spell
  out the mechanism; bypass declarations make it explicit and checkable.
* values support ``${name}`` interpolation against procedure formals.

AST nodes are plain frozen dataclasses; they carry no behaviour beyond
convenience accessors, so the parser, builder, and xmlio modules stay in
lock-step.

Source-bearing nodes carry a ``line`` attribute (the XML source line,
stamped by the parser; ``None`` for builder-assembled specs).  It is a
``compare=False`` field so specs compare equal regardless of where their
text happened to sit in a file — round-trip tests and the AppBuilder rely
on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

__all__ = [
    "Value",
    "StreamFormal",
    "ParamFormal",
    "ComponentNode",
    "CallNode",
    "ParallelNode",
    "EventHandler",
    "Bypass",
    "OptionNode",
    "ManagerNode",
    "BodyNode",
    "Procedure",
    "Spec",
    "PARALLEL_SHAPES",
    "HANDLER_ACTIONS",
]

#: Scalar initialization-parameter value after parsing.  Strings may still
#: contain ``${name}`` placeholders that the expander substitutes.
Value = Union[int, float, bool, str]

PARALLEL_SHAPES = ("task", "slice", "crossdep")
HANDLER_ACTIONS = ("enable", "disable", "toggle", "forward", "reconfigure")


@dataclass(frozen=True)
class StreamFormal:
    """A formal stream parameter of a procedure."""

    name: str


@dataclass(frozen=True)
class ParamFormal:
    """A formal initialization parameter of a procedure.

    ``default`` of ``None`` means the caller must supply the argument.
    """

    name: str
    default: Value | None = None


@dataclass(frozen=True)
class ComponentNode:
    """``<component name=... class=...>`` — one component instantiation.

    ``streams`` maps the component class's *port name* to a stream
    expression (a stream name, or ``${formal}``).  Direction (input vs
    output port) is a property of the component class, looked up in the
    component registry; the coordination spec itself stays direction
    agnostic, which is what lets a component "not know to which other
    component(s) it is connected".

    ``formats`` holds per-binding format overrides — the optional
    ``format=`` attribute of ``<stream>`` — which replace the component
    class's declared format for that port (grammar in
    :mod:`repro.core.formats`).  ``stream_lines`` records each binding's
    XML source line so format diagnostics point at the offending
    ``<stream>`` element rather than the whole component.
    """

    name: str
    class_name: str
    streams: dict[str, str] = field(default_factory=dict)
    params: dict[str, Value] = field(default_factory=dict)
    #: reconfiguration request delivered once, upon creation (paper §3.1)
    reconfigure: str | None = None
    formats: dict[str, str] = field(default_factory=dict)
    line: int | None = field(default=None, compare=False, repr=False)
    stream_lines: dict[str, int | None] = field(
        default_factory=dict, compare=False, repr=False
    )


@dataclass(frozen=True)
class CallNode:
    """``<call procedure=... name=...>`` — instantiate a procedure."""

    procedure: str
    name: str
    streams: dict[str, str] = field(default_factory=dict)
    params: dict[str, Value] = field(default_factory=dict)
    line: int | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ParallelNode:
    """``<parallel shape=...>`` with one or more parblocks.

    * ``task``: each parblock is an independent branch.
    * ``slice``: exactly one parblock, replicated ``n`` times; each copy
      is told its (index, n) through the reconfiguration interface.
    * ``crossdep``: several parblocks, each replicated ``n`` times; copy
      *i* of parblock *j+1* depends on copies *i-1, i, i+1* of parblock
      *j* (paper Fig. 5) — deliberately non-SP.
    """

    shape: str
    parblocks: tuple[tuple["BodyNode", ...], ...]
    n: Value | None = None  # replication count for slice/crossdep
    line: int | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class EventHandler:
    """``<on event=... action=.../>`` inside a manager.

    ``action`` is one of :data:`HANDLER_ACTIONS`; ``option`` names the
    option for enable/disable/toggle, ``target`` the destination queue for
    forward, ``request`` the payload for reconfigure (sent to every
    component in the managed subgraph).
    """

    event: str
    action: str
    option: str | None = None
    target: str | None = None
    request: str | None = None
    line: int | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Bypass:
    """``<bypass from=... to=.../>``: while the enclosing option is
    disabled, writers of stream ``src`` write to ``dst`` instead."""

    src: str
    dst: str
    line: int | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class OptionNode:
    """``<option name=...>`` — a subgraph that can be switched at runtime."""

    name: str
    body: tuple["BodyNode", ...]
    enabled: bool = True  # initial state
    bypasses: tuple[Bypass, ...] = ()
    line: int | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ManagerNode:
    """``<manager name=... queue=...>`` — reconfiguration container.

    The manager is invoked at the entry and exit of its subgraph every
    iteration; it polls ``queue`` and applies its handlers.  All options
    in its body belong to it.
    """

    name: str
    queue: str
    handlers: tuple[EventHandler, ...]
    body: tuple["BodyNode", ...]
    line: int | None = field(default=None, compare=False, repr=False)


BodyNode = Union[ComponentNode, CallNode, ParallelNode, ManagerNode, OptionNode]


@dataclass(frozen=True)
class Procedure:
    """A named, reusable subgraph; ``main`` is the application root."""

    name: str
    body: tuple[BodyNode, ...]
    stream_formals: tuple[StreamFormal, ...] = ()
    param_formals: tuple[ParamFormal, ...] = ()
    line: int | None = field(default=None, compare=False, repr=False)

    def formal_stream_names(self) -> set[str]:
        return {f.name for f in self.stream_formals}

    def formal_param_names(self) -> set[str]:
        return {f.name for f in self.param_formals}


@dataclass(frozen=True)
class Spec:
    """A whole XSPCL document: a set of procedures, one named ``main``."""

    procedures: dict[str, Procedure]
    version: str = "1.0"

    @property
    def main(self) -> Procedure:
        return self.procedures["main"]

    def __post_init__(self) -> None:
        # Mapping keys must agree with procedure names; cheap invariant
        # that catches hand-built Spec objects assembled incorrectly.
        for key, proc in self.procedures.items():
            if key != proc.name:
                raise ValueError(
                    f"procedure registered under {key!r} but named {proc.name!r}"
                )


def walk_body(body: tuple[BodyNode, ...]):
    """Yield every BodyNode in ``body`` recursively (pre-order)."""
    for node in body:
        yield node
        if isinstance(node, ParallelNode):
            for pb in node.parblocks:
                yield from walk_body(pb)
        elif isinstance(node, ManagerNode):
            yield from walk_body(node.body)
        elif isinstance(node, OptionNode):
            yield from walk_body(node.body)
