"""Fluent Python API for constructing XSPCL specifications.

The paper envisions a graphical front-end emitting XSPCL; this builder is
the programmatic stand-in.  It produces the same :class:`Spec` AST the XML
parser does, so everything downstream (validation, expansion, codegen,
XML serialization) is shared::

    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "video_input", streams={"output": "raw"},
                   params={"width": 720, "height": 576})
    with main.parallel("slice", n=8):
        main.component("scale", "downscale_field",
                       streams={"input": "raw", "output": "small"},
                       params={"factor": 4, "field": "y"})
    main.component("sink", "video_output", streams={"input": "small"})
    spec = b.build()          # -> Spec, ready for validate()/expand()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

from repro.core.ast import (
    BodyNode,
    Bypass,
    CallNode,
    ComponentNode,
    EventHandler,
    ManagerNode,
    OptionNode,
    ParallelNode,
    ParamFormal,
    Procedure,
    Spec,
    StreamFormal,
    Value,
)
from repro.errors import XSPCLError

__all__ = ["AppBuilder", "ProcedureBuilder", "ManagerHandle"]


class ManagerHandle:
    """Returned by :meth:`ProcedureBuilder.manager`; declares handlers."""

    def __init__(self) -> None:
        self.handlers: list[EventHandler] = []

    def on(
        self,
        event: str,
        action: str,
        *,
        option: str | None = None,
        target: str | None = None,
        request: str | None = None,
    ) -> "ManagerHandle":
        """Add an event handler; chainable."""
        self.handlers.append(
            EventHandler(
                event=event, action=action, option=option, target=target,
                request=request,
            )
        )
        return self


class ProcedureBuilder:
    """Accumulates one procedure's body via nested context managers."""

    def __init__(
        self,
        name: str,
        stream_formals: Sequence[str] = (),
        param_formals: Mapping[str, Value | None] | Sequence[str] = (),
    ) -> None:
        self.name = name
        self._stream_formals = tuple(StreamFormal(s) for s in stream_formals)
        if isinstance(param_formals, Mapping):
            self._param_formals = tuple(
                ParamFormal(k, default=v) for k, v in param_formals.items()
            )
        else:
            self._param_formals = tuple(ParamFormal(k) for k in param_formals)
        self._stack: list[list[BodyNode]] = [[]]

    # -- leaf statements ----------------------------------------------------

    def component(
        self,
        name: str,
        class_name: str,
        *,
        streams: Mapping[str, str] | None = None,
        params: Mapping[str, Value] | None = None,
        reconfigure: str | None = None,
        formats: Mapping[str, str] | None = None,
    ) -> "ProcedureBuilder":
        self._stack[-1].append(
            ComponentNode(
                name=name,
                class_name=class_name,
                streams=dict(streams or {}),
                params=dict(params or {}),
                reconfigure=reconfigure,
                formats=dict(formats or {}),
            )
        )
        return self

    def call(
        self,
        procedure: str,
        *,
        name: str | None = None,
        streams: Mapping[str, str] | None = None,
        params: Mapping[str, Value] | None = None,
    ) -> "ProcedureBuilder":
        self._stack[-1].append(
            CallNode(
                procedure=procedure,
                name=name or procedure,
                streams=dict(streams or {}),
                params=dict(params or {}),
            )
        )
        return self

    # -- structured statements ------------------------------------------------

    @contextmanager
    def parallel(
        self, shape: str = "task", *, n: Value | None = None
    ) -> Iterator[None]:
        """Open a parallel region.

        For ``shape="slice"`` the single parblock is implicit: statements
        inside the ``with`` block form it.  For ``task``/``crossdep`` use
        nested :meth:`parblock` blocks.
        """
        marker = len(self._stack)
        if shape == "slice":
            self._stack.append([])  # the implicit sole parblock
            yield
            pb = self._stack.pop()
            if len(self._stack) != marker:
                raise XSPCLError("unbalanced builder nesting in parallel(slice)")
            self._stack[-1].append(
                ParallelNode(shape="slice", parblocks=(tuple(pb),), n=n)
            )
        else:
            collector: list[tuple[BodyNode, ...]] = []
            self._stack.append(_ParblockCollector(collector))  # type: ignore[arg-type]
            yield
            top = self._stack.pop()
            if not isinstance(top, _ParblockCollector):
                raise XSPCLError("unbalanced builder nesting in parallel()")
            self._stack[-1].append(
                ParallelNode(shape=shape, parblocks=tuple(collector), n=n)
            )

    @contextmanager
    def parblock(self) -> Iterator[None]:
        top = self._stack[-1]
        if not isinstance(top, _ParblockCollector):
            raise XSPCLError("parblock() is only valid directly inside parallel()")
        self._stack.append([])
        yield
        pb = self._stack.pop()
        top.collector.append(tuple(pb))

    @contextmanager
    def manager(self, name: str, *, queue: str) -> Iterator[ManagerHandle]:
        handle = ManagerHandle()
        self._stack.append([])
        yield handle
        body = self._stack.pop()
        self._stack[-1].append(
            ManagerNode(
                name=name,
                queue=queue,
                handlers=tuple(handle.handlers),
                body=tuple(body),
            )
        )

    @contextmanager
    def option(
        self,
        name: str,
        *,
        enabled: bool = True,
        bypass: Sequence[tuple[str, str]] = (),
    ) -> Iterator[None]:
        self._stack.append([])
        yield
        body = self._stack.pop()
        self._stack[-1].append(
            OptionNode(
                name=name,
                body=tuple(body),
                enabled=enabled,
                bypasses=tuple(Bypass(src, dst) for src, dst in bypass),
            )
        )

    # -- finish -----------------------------------------------------------------

    def _build(self) -> Procedure:
        if len(self._stack) != 1:
            raise XSPCLError(
                f"procedure {self.name!r} has unbalanced builder nesting "
                f"({len(self._stack) - 1} unclosed block(s))"
            )
        return Procedure(
            name=self.name,
            body=tuple(self._stack[0]),
            stream_formals=self._stream_formals,
            param_formals=self._param_formals,
        )


class _ParblockCollector(list):
    """Stack frame marking a task/crossdep parallel awaiting parblocks.

    It is a list subclass so accidental statement appends inside
    ``parallel()`` (without ``parblock()``) can be detected and reported.
    """

    def __init__(self, collector: list[tuple[BodyNode, ...]]) -> None:
        super().__init__()
        self.collector = collector

    def append(self, item) -> None:  # type: ignore[override]
        raise XSPCLError(
            "statements inside parallel(task/crossdep) must be wrapped in "
            "parblock()"
        )


class AppBuilder:
    """Top-level builder: a set of procedures forming one Spec."""

    def __init__(self, version: str = "1.0") -> None:
        self.version = version
        self._procs: dict[str, ProcedureBuilder] = {}

    def procedure(
        self,
        name: str,
        *,
        stream_formals: Sequence[str] = (),
        param_formals: Mapping[str, Value | None] | Sequence[str] = (),
    ) -> ProcedureBuilder:
        if name in self._procs:
            raise XSPCLError(f"duplicate procedure {name!r}")
        builder = ProcedureBuilder(name, stream_formals, param_formals)
        self._procs[name] = builder
        return builder

    def build(self) -> Spec:
        return Spec(
            procedures={name: b._build() for name, b in self._procs.items()},
            version=self.version,
        )
