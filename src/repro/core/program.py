"""Expanded programs: the IR between XSPCL and the runtime/simulator.

The expander lowers a validated :class:`~repro.core.ast.Spec` into a
:class:`Program`: every procedure call inlined, every slice/crossdep
parblock replicated, every ``${...}`` placeholder substituted.  What
remains is a tree of *component instances* composed in series/parallel,
plus crossdep regions (non-SP by design) and manager/option containers.

A Program is configuration-polymorphic: :meth:`Program.build_graph`
instantiates the flat :class:`~repro.graph.taskgraph.TaskGraph` and the
stream connection table for one assignment of option states.  The Hinch
runtime calls it again after each reconfiguration — this mirrors the
paper, where glue code runs "at initialization time, or when the program
is reconfigured".

Stream model
------------
A stream carries one whole frame (or packet) per iteration.  Data-parallel
copies of a component *share* their streams and each processes its own
region, exactly as the paper's reconfiguration interface "tell[s] a
component which part of the input it has to process".  Consequently a
stream has one *logical* writer — all slice copies of one definition site
— and any number of readers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.core.ast import EventHandler, Value
from repro.core.ports import PortSpec
from repro.errors import ReconfigurationError, ValidationError
from repro.graph.spc import Leaf, SPNode, parallel as sp_parallel, series as sp_series
from repro.graph.taskgraph import TaskGraph

__all__ = [
    "ComponentInstance",
    "StreamTable",
    "StreamEndpoint",
    "ManagerInfo",
    "OptionInfo",
    "Program",
    "ProgramGraph",
    "StreamProblem",
    "stream_problems",
    "IRLeaf",
    "IRSeries",
    "IRParallel",
    "IRCrossdep",
    "IRManager",
    "IROption",
]


@dataclass(frozen=True)
class ComponentInstance:
    """One fully-resolved component occurrence.

    ``instance_id`` is globally unique (call scopes joined with ``/``,
    slice copies suffixed ``[i]``); ``definition_id`` strips the slice
    suffix, so all copies of one textual component share it.
    """

    instance_id: str
    definition_id: str
    class_name: str
    params: dict[str, Value]
    streams: dict[str, str]  # port -> global stream name (pre-bypass)
    slice: tuple[int, int] | None = None  # (index, total copies)
    reconfigure: str | None = None
    manager: str | None = None  # nearest enclosing manager (qualified)
    options: tuple[str, ...] = ()  # enclosing options, outermost first
    #: per-binding format overrides (<stream format=...>), substituted
    port_formats: dict[str, str] = field(default_factory=dict)
    #: XML source line of the defining <component> (diagnostics only)
    line: int | None = field(default=None, compare=False, repr=False)
    #: XML source line of each <stream> binding (diagnostics only)
    port_lines: dict[str, int | None] = field(
        default_factory=dict, compare=False, repr=False
    )


@dataclass(frozen=True)
class StreamEndpoint:
    instance_id: str
    port: str


@dataclass
class StreamTable:
    """Connections of one stream in one active configuration."""

    name: str
    writers: list[StreamEndpoint] = field(default_factory=list)
    readers: list[StreamEndpoint] = field(default_factory=list)


@dataclass(frozen=True)
class OptionInfo:
    qname: str
    manager: str
    default_enabled: bool
    bypasses: tuple[tuple[str, str], ...]  # (src, dst) global stream names
    members: tuple[str, ...]  # component instance ids inside the option


@dataclass(frozen=True)
class ManagerInfo:
    qname: str
    queue: str
    handlers: tuple[EventHandler, ...]  # option fields hold *qualified* names
    options: tuple[str, ...]  # qualified option names owned by this manager
    members: tuple[str, ...]  # component instance ids inside the manager
    enter_id: str = ""
    exit_id: str = ""

    def handlers_for(self, event: str) -> tuple[EventHandler, ...]:
        return tuple(h for h in self.handlers if h.event == event)


# ---------------------------------------------------------------------------
# IR tree
# ---------------------------------------------------------------------------


class IRNode:
    __slots__ = ()


@dataclass(frozen=True)
class IRLeaf(IRNode):
    instance: ComponentInstance


@dataclass(frozen=True)
class IRSeries(IRNode):
    children: tuple[IRNode, ...]


@dataclass(frozen=True)
class IRParallel(IRNode):
    children: tuple[IRNode, ...]


@dataclass(frozen=True)
class IRCrossdep(IRNode):
    """parblocks[j][i] is copy *i* of parblock *j* (paper Fig. 5)."""

    parblocks: tuple[tuple[IRNode, ...], ...]


@dataclass(frozen=True)
class IRManager(IRNode):
    qname: str
    child: IRNode


@dataclass(frozen=True)
class IROption(IRNode):
    qname: str
    child: IRNode


def iter_ir(node: IRNode) -> Iterator[IRNode]:
    yield node
    if isinstance(node, (IRSeries, IRParallel)):
        for child in node.children:
            yield from iter_ir(child)
    elif isinstance(node, IRCrossdep):
        for pb in node.parblocks:
            for copy in pb:
                yield from iter_ir(copy)
    elif isinstance(node, (IRManager, IROption)):
        yield from iter_ir(node.child)


@dataclass
class ProgramGraph:
    """One configuration's executable view of a Program."""

    graph: TaskGraph
    streams: dict[str, StreamTable]
    aliases: dict[str, str]  # pre-bypass stream name -> effective name
    option_states: dict[str, bool]
    active_components: tuple[str, ...]
    #: instance ids inside crossdep regions — their halo edges encode a
    #: sparser ordering than the stream tables suggest, so graph rewrites
    #: (grouping, fusion) must not merge across them
    crossdep_nodes: frozenset[str] = frozenset()

    def resolve_stream(self, name: str) -> str:
        return self.aliases.get(name, name)


class Program:
    """A fully expanded application, ready to instantiate per configuration."""

    def __init__(
        self,
        name: str,
        root: IRNode,
        components: dict[str, ComponentInstance],
        managers: dict[str, ManagerInfo],
        options: dict[str, OptionInfo],
        registry: Mapping[str, PortSpec],
    ) -> None:
        self.name = name
        self.root = root
        self.components = components
        self.managers = managers
        self.options = options
        self.registry = registry
        #: option-state keys whose stream wiring already validated clean;
        #: building a graph is deterministic per configuration, so the
        #: (expensive, reachability-walking) stream checks run once per
        #: configuration instead of once per build — reconfiguration
        #: toggles between a handful of configurations thousands of times.
        self._validated_states: set[tuple[tuple[str, bool], ...]] = set()

    # -- introspection ------------------------------------------------------

    @property
    def queues(self) -> tuple[str, ...]:
        """All event-queue names: manager queues plus forward targets."""
        names: list[str] = []
        for mgr in self.managers.values():
            if mgr.queue not in names:
                names.append(mgr.queue)
            for h in mgr.handlers:
                if h.action == "forward" and h.target not in names:
                    names.append(h.target)  # type: ignore[arg-type]
        return tuple(names)

    def default_option_states(self) -> dict[str, bool]:
        return {q: o.default_enabled for q, o in self.options.items()}

    def manager_of_option(self, option_qname: str) -> ManagerInfo:
        try:
            opt = self.options[option_qname]
        except KeyError:
            raise ReconfigurationError(f"unknown option {option_qname!r}") from None
        return self.managers[opt.manager]

    # -- configuration instantiation ----------------------------------------

    def build_graph(
        self,
        option_states: Mapping[str, bool] | None = None,
        *,
        check: bool = True,
    ) -> ProgramGraph:
        """Instantiate the task graph + stream table for one configuration.

        ``option_states`` overrides the per-option defaults; unknown names
        are rejected.  The returned graph contains a ``task`` node per
        active component instance, barrier nodes at plural series
        junctions, crossdep edges, and ``manager_enter``/``manager_exit``
        pseudo-nodes bracketing each managed subgraph.

        With ``check=False`` the stream sanity checks are skipped — the
        lint engine uses this to collect *all* problems via
        :func:`stream_problems` instead of failing on the first.
        """
        states = self.default_option_states()
        if option_states:
            unknown = set(option_states) - set(states)
            if unknown:
                raise ReconfigurationError(
                    f"unknown options in configuration: {sorted(unknown)}"
                )
            states.update(option_states)

        graph = TaskGraph()
        counters: dict[str, int] = {}

        def fresh(label: str) -> str:
            c = counters.get(label, 0)
            counters[label] = c + 1
            return label if c == 0 else f"{label}~{c}"

        def connect(sinks: list[str], sources: list[str]) -> None:
            if len(sinks) > 1 and len(sources) > 1:
                barrier = fresh("join")
                graph.add_node(barrier, kind="barrier", weight=0.0)
                for s in sinks:
                    graph.add_edge(s, barrier)
                for t in sources:
                    graph.add_edge(barrier, t)
            else:
                for s in sinks:
                    for t in sources:
                        graph.add_edge(s, t)

        active: list[str] = []
        crossdep_members: set[str] = set()

        def lower(node: IRNode) -> tuple[list[str], list[str]]:
            """Returns (sources, sinks); ([], []) when fully disabled."""
            if isinstance(node, IRLeaf):
                inst = node.instance
                graph.add_node(
                    inst.instance_id,
                    label=inst.instance_id,
                    payload=inst,
                )
                active.append(inst.instance_id)
                return [inst.instance_id], [inst.instance_id]
            if isinstance(node, IRSeries):
                first: list[str] | None = None
                prev: list[str] = []
                for child in node.children:
                    c_src, c_snk = lower(child)
                    if not c_src:
                        continue  # disabled option drops out of the chain
                    if first is None:
                        first = c_src
                    else:
                        connect(prev, c_src)
                    prev = c_snk
                return (first or [], prev)
            if isinstance(node, IRParallel):
                sources: list[str] = []
                sinks: list[str] = []
                for child in node.children:
                    c_src, c_snk = lower(child)
                    sources.extend(c_src)
                    sinks.extend(c_snk)
                return sources, sinks
            if isinstance(node, IRCrossdep):
                mark = len(active)
                region_sources: list[str] = []
                prev_copies: list[tuple[list[str], list[str]]] = []
                for j, pb in enumerate(node.parblocks):
                    copies = [lower(copy) for copy in pb]
                    if j == 0:
                        for c_src, _ in copies:
                            region_sources.extend(c_src)
                    else:
                        n = len(copies)
                        for i, (c_src, _) in enumerate(copies):
                            for k in (i - 1, i, i + 1):
                                if 0 <= k < len(prev_copies):
                                    for snk in prev_copies[k][1]:
                                        for src in c_src:
                                            graph.add_edge(snk, src)
                    prev_copies = copies
                region_sinks = [s for _, snks in prev_copies for s in snks]
                crossdep_members.update(active[mark:])
                return region_sources, region_sinks
            if isinstance(node, IRManager):
                c_src, c_snk = lower(node.child)
                enter = fresh(f"{node.qname}.enter")
                exit_ = fresh(f"{node.qname}.exit")
                graph.add_node(
                    enter, kind="manager_enter", payload=node.qname, weight=0.0
                )
                graph.add_node(
                    exit_, kind="manager_exit", payload=node.qname, weight=0.0
                )
                for s in c_src:
                    graph.add_edge(enter, s)
                for s in c_snk:
                    graph.add_edge(s, exit_)
                if not c_src:  # fully-disabled body still runs the manager
                    graph.add_edge(enter, exit_)
                return [enter], [exit_]
            if isinstance(node, IROption):
                if not states[node.qname]:
                    return [], []
                return lower(node.child)
            raise AssertionError(f"unknown IR node {type(node).__name__}")

        lower(self.root)

        aliases = self._alias_map(states)
        streams = self._stream_table(active, aliases)
        if check:
            states_key = tuple(sorted(states.items()))
            if states_key not in self._validated_states:
                problems = stream_problems(self, graph, streams)
                if problems:
                    raise ValidationError(problems[0].message)
                self._validated_states.add(states_key)
        return ProgramGraph(
            graph=graph,
            streams=streams,
            aliases=aliases,
            option_states=states,
            active_components=tuple(active),
            crossdep_nodes=frozenset(crossdep_members),
        )

    # -- stream wiring -------------------------------------------------------

    def _alias_map(self, states: Mapping[str, bool]) -> dict[str, str]:
        """Bypass declarations of *disabled* options, chased to fixpoint."""
        direct: dict[str, str] = {}
        for qname, opt in self.options.items():
            if not states[qname]:
                for src, dst in opt.bypasses:
                    if src in direct and direct[src] != dst:
                        raise ReconfigurationError(
                            f"conflicting bypasses for stream {src!r}: "
                            f"{direct[src]!r} vs {dst!r}"
                        )
                    direct[src] = dst
        resolved: dict[str, str] = {}
        for src in direct:
            seen = {src}
            cur = src
            while cur in direct:
                cur = direct[cur]
                if cur in seen:
                    raise ReconfigurationError(
                        f"bypass cycle involving stream {src!r}"
                    )
                seen.add(cur)
            resolved[src] = cur
        return resolved

    def _stream_table(
        self, active: list[str], aliases: dict[str, str]
    ) -> dict[str, StreamTable]:
        tables: dict[str, StreamTable] = {}
        for inst_id in active:
            inst = self.components[inst_id]
            spec = self.registry[inst.class_name]
            for port, raw_name in inst.streams.items():
                name = aliases.get(raw_name, raw_name)
                table = tables.setdefault(name, StreamTable(name))
                endpoint = StreamEndpoint(inst_id, port)
                if spec.is_output(port):
                    table.writers.append(endpoint)
                else:
                    table.readers.append(endpoint)
        return tables

    # -- prediction support ---------------------------------------------------

    def to_sp_tree(self, option_states: Mapping[str, bool] | None = None) -> SPNode:
        """SP composition tree for one configuration (for prediction).

        Crossdep regions are SP-ized: each parblock becomes a parallel
        block of its copies, parblocks composed in series — the paper's
        "synchronization point between the parblocks".  Managers
        contribute zero-weight enter/exit leaves.
        """
        states = self.default_option_states()
        if option_states:
            states.update(option_states)

        def conv(node: IRNode) -> SPNode | None:
            if isinstance(node, IRLeaf):
                return Leaf(node.instance.instance_id, payload=node.instance)
            if isinstance(node, IRSeries):
                parts = [p for p in (conv(c) for c in node.children) if p is not None]
                if not parts:
                    return None
                return sp_series(*parts)
            if isinstance(node, IRParallel):
                parts = [p for p in (conv(c) for c in node.children) if p is not None]
                if not parts:
                    return None
                return sp_parallel(*parts)
            if isinstance(node, IRCrossdep):
                stages = []
                for pb in node.parblocks:
                    copies = [p for p in (conv(c) for c in pb) if p is not None]
                    if copies:
                        stages.append(sp_parallel(*copies))
                if not stages:
                    return None
                return sp_series(*stages)
            if isinstance(node, IRManager):
                inner = conv(node.child)
                enter = Leaf(f"{node.qname}.enter", weight=0.0)
                exit_ = Leaf(f"{node.qname}.exit", weight=0.0)
                if inner is None:
                    return sp_series(enter, exit_)
                return sp_series(enter, inner, exit_)
            if isinstance(node, IROption):
                if not states[node.qname]:
                    return None
                return conv(node.child)
            raise AssertionError(f"unknown IR node {type(node).__name__}")

        tree = conv(self.root)
        if tree is None:
            raise ValidationError("program has no active components")
        return tree

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, components={len(self.components)}, "
            f"managers={len(self.managers)}, options={len(self.options)})"
        )


@dataclass(frozen=True)
class StreamProblem:
    """One stream-sanity violation found in a built configuration.

    ``kind`` is one of ``multiple-writers`` / ``no-writer`` / ``unordered``;
    the lint engine maps these to diagnostic codes X302 / X205 / X303.
    ``instances`` names the offending component instance ids.
    """

    kind: str
    stream: str
    message: str
    instances: tuple[str, ...] = ()


def stream_problems(
    program: Program, graph: TaskGraph, streams: dict[str, StreamTable]
) -> list[StreamProblem]:
    """All stream-sanity violations of one configuration (collect-all).

    The checks mirror the paper's stream model: one logical writer per
    stream, every read preceded by the write of the same iteration, and
    sliced producer/consumer pairs matched index-to-index (crossdep covers
    its own halo through graph edges).
    """
    problems: list[StreamProblem] = []
    for table in streams.values():
        defs = {
            program.components[w.instance_id].definition_id for w in table.writers
        }
        if len(defs) > 1:
            problems.append(
                StreamProblem(
                    kind="multiple-writers",
                    stream=table.name,
                    message=(
                        f"stream {table.name!r} has multiple logical writers: "
                        f"{sorted(defs)}"
                    ),
                    instances=tuple(sorted(w.instance_id for w in table.writers)),
                )
            )
        if table.readers and not table.writers:
            problems.append(
                StreamProblem(
                    kind="no-writer",
                    stream=table.name,
                    message=(
                        f"stream {table.name!r} is read by "
                        f"{[r.instance_id for r in table.readers]} but has no "
                        "active writer"
                    ),
                    instances=tuple(sorted(r.instance_id for r in table.readers)),
                )
            )
        # Ordering: unsliced pairs must be graph-ordered; sliced pairs
        # are checked index-to-index (crossdep covers its own halo).
        for writer in table.writers:
            w_inst = program.components[writer.instance_id]
            w_desc = None
            for reader in table.readers:
                r_inst = program.components[reader.instance_id]
                if (
                    w_inst.slice is not None
                    and r_inst.slice is not None
                    and w_inst.slice[0] != r_inst.slice[0]
                ):
                    continue
                if w_desc is None:
                    w_desc = graph.descendants(writer.instance_id)
                if reader.instance_id not in w_desc:
                    problems.append(
                        StreamProblem(
                            kind="unordered",
                            stream=table.name,
                            message=(
                                f"stream {table.name!r}: reader "
                                f"{reader.instance_id!r} is not scheduled after "
                                f"writer {writer.instance_id!r}; the task graph "
                                "does not order them"
                            ),
                            instances=(writer.instance_id, reader.instance_id),
                        )
                    )
    return problems
