"""Expansion: validated Spec -> :class:`~repro.core.program.Program`.

Expansion performs, in one recursive walk:

* **procedure inlining** — each ``<call>`` instantiates the callee's body
  with actual stream/param arguments bound to its formals; instance names
  are qualified with the call path (``chain1/scaler``), giving procedural
  abstraction without any runtime cost (paper §3.2);
* **placeholder substitution** — ``${formal}`` in stream refs, param
  values, parallel ``n`` and reconfiguration requests;
* **data-parallel replication** — ``slice``/``crossdep`` parblocks are
  copied ``n`` times; copy *i* is told ``(i, n)`` through its
  reconfiguration interface (here: the ``slice`` field of its instance);
* **manager/option collection** — managers learn their member components,
  owned options and qualified handler targets, so the runtime can halt
  exactly the managed subgraph.

Stream names are scoped per procedure instantiation: a literal name
``tmp`` inside call ``chain1`` becomes ``chain1/tmp``, while a formal
reference ``${out}`` resolves to the caller's already-qualified name.
Data-parallel copies *share* their streams (whole-frame buffers) and each
processes its assigned region — see :mod:`repro.core.program`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.ast import (
    BodyNode,
    CallNode,
    ComponentNode,
    EventHandler,
    ManagerNode,
    OptionNode,
    ParallelNode,
    Procedure,
    Spec,
    Value,
)
from repro.core.parser import parse_value
from repro.core.ports import PortSpec
from repro.core.program import (
    ComponentInstance,
    IRCrossdep,
    IRLeaf,
    IRManager,
    IRNode,
    IROption,
    IRParallel,
    IRSeries,
    ManagerInfo,
    OptionInfo,
    Program,
)
from repro.core.validator import validate
from repro.errors import ExpansionError

__all__ = ["expand"]

_PLACEHOLDER = re.compile(r"\$\{([^}]*)\}")
_WHOLE_STREAM_REF = re.compile(r"^\$\{([^}]*)\}$")


@dataclass
class _Scope:
    """One procedure instantiation's name bindings."""

    prefix: str  # "" for main, "chain1/" inside call chain1, ...
    params: dict[str, Value]
    streams: dict[str, str]  # formal name -> global stream name


@dataclass
class _Context:
    """Walk state that is not tied to a procedure scope."""

    manager: str | None = None
    options: tuple[str, ...] = ()
    slice: tuple[int, int] | None = None
    copy_suffix: str = ""
    region_kind: str | None = None  # 'slice' | 'crossdep' while replicating


class _Expander:
    def __init__(self, spec: Spec, registry: Mapping[str, PortSpec], name: str):
        self.spec = spec
        self.registry = registry
        self.name = name
        self.components: dict[str, ComponentInstance] = {}
        self.managers: dict[str, ManagerInfo] = {}
        self.options: dict[str, OptionInfo] = {}
        # accumulated while inside a manager/option, keyed by qname
        self._member_acc: dict[str, list[str]] = {}
        self._option_acc: dict[str, list[str]] = {}

    # -- substitution helpers -------------------------------------------------

    def _subst_text(self, raw: str, scope: _Scope, what: str) -> str:
        def repl(m: re.Match[str]) -> str:
            key = m.group(1)
            if key in scope.params:
                value = scope.params[key]
                if isinstance(value, bool):
                    return "true" if value else "false"
                return str(value)
            if key in scope.streams:
                return scope.streams[key]
            raise ExpansionError(
                f"{what}: unresolved placeholder ${{{key}}} "
                f"(known formals: {sorted(scope.params) + sorted(scope.streams)})"
            )

        return _PLACEHOLDER.sub(repl, raw)

    def _subst_value(self, raw: Value, scope: _Scope, what: str) -> Value:
        if isinstance(raw, str) and "${" in raw:
            return parse_value(self._subst_text(raw, scope, what))
        return raw

    def _resolve_stream(self, ref: str, scope: _Scope, what: str) -> str:
        whole = _WHOLE_STREAM_REF.match(ref)
        if whole and whole.group(1) in scope.streams:
            return scope.streams[whole.group(1)]
        text = self._subst_text(ref, scope, what) if "${" in ref else ref
        return scope.prefix + text

    def _resolve_n(self, par: ParallelNode, scope: _Scope) -> int:
        assert par.n is not None
        n = self._subst_value(par.n, scope, "parallel n")
        if isinstance(n, bool) or not isinstance(n, int):
            raise ExpansionError(f"parallel n must resolve to an integer, got {n!r}")
        if n < 1:
            raise ExpansionError(f"parallel n must be >= 1, got {n}")
        return n

    # -- membership bookkeeping ------------------------------------------------

    def _record_member(self, ctx: _Context, instance_id: str) -> None:
        if ctx.manager is not None:
            self._member_acc.setdefault(ctx.manager, []).append(instance_id)
        for opt in ctx.options:
            self._option_acc.setdefault(opt, []).append(instance_id)

    # -- walk -------------------------------------------------------------------

    def expand_body(
        self, body: tuple[BodyNode, ...], scope: _Scope, ctx: _Context
    ) -> IRNode:
        children = [self.expand_node(node, scope, ctx) for node in body]
        if len(children) == 1:
            return children[0]
        return IRSeries(tuple(children))

    def expand_node(self, node: BodyNode, scope: _Scope, ctx: _Context) -> IRNode:
        if isinstance(node, ComponentNode):
            return self._expand_component(node, scope, ctx)
        if isinstance(node, CallNode):
            return self._expand_call(node, scope, ctx)
        if isinstance(node, ParallelNode):
            return self._expand_parallel(node, scope, ctx)
        if isinstance(node, ManagerNode):
            return self._expand_manager(node, scope, ctx)
        if isinstance(node, OptionNode):
            return self._expand_option(node, scope, ctx)
        raise AssertionError(f"unknown body node {type(node).__name__}")

    def _expand_component(
        self, comp: ComponentNode, scope: _Scope, ctx: _Context
    ) -> IRLeaf:
        definition_id = scope.prefix + comp.name
        instance_id = definition_id + ctx.copy_suffix
        if instance_id in self.components:
            raise ExpansionError(f"duplicate component instance {instance_id!r}")
        what = f"component {instance_id!r}"
        params = {
            k: self._subst_value(v, scope, f"{what} param {k!r}")
            for k, v in comp.params.items()
        }
        streams = {
            port: self._resolve_stream(ref, scope, f"{what} port {port!r}")
            for port, ref in comp.streams.items()
        }
        reconfigure = (
            self._subst_text(comp.reconfigure, scope, f"{what} reconfigure")
            if comp.reconfigure is not None and "${" in comp.reconfigure
            else comp.reconfigure
        )
        port_formats = {
            port: self._subst_text(fmt, scope, f"{what} format {port!r}")
            if "${" in fmt
            else fmt
            for port, fmt in comp.formats.items()
        }
        instance = ComponentInstance(
            instance_id=instance_id,
            definition_id=definition_id,
            class_name=comp.class_name,
            params=params,
            streams=streams,
            slice=ctx.slice,
            reconfigure=reconfigure,
            manager=ctx.manager,
            options=ctx.options,
            port_formats=port_formats,
            line=comp.line,
            port_lines=dict(comp.stream_lines),
        )
        self.components[instance_id] = instance
        self._record_member(ctx, instance_id)
        return IRLeaf(instance)

    def _expand_call(self, call: CallNode, scope: _Scope, ctx: _Context) -> IRNode:
        callee = self.spec.procedures[call.procedure]
        what = f"call {scope.prefix + call.name!r}"
        stream_env = {
            formal: self._resolve_stream(ref, scope, f"{what} stream {formal!r}")
            for formal, ref in call.streams.items()
        }
        param_env: dict[str, Value] = {}
        for formal in callee.param_formals:
            if formal.name in call.params:
                param_env[formal.name] = self._subst_value(
                    call.params[formal.name], scope, f"{what} param {formal.name!r}"
                )
            else:
                assert formal.default is not None  # validator guarantees
                param_env[formal.name] = formal.default
        inner = _Scope(
            prefix=scope.prefix + call.name + "/",
            params=param_env,
            streams=stream_env,
        )
        return self.expand_body(callee.body, inner, ctx)

    def _expand_parallel(
        self, par: ParallelNode, scope: _Scope, ctx: _Context
    ) -> IRNode:
        if par.shape == "task":
            children = tuple(
                self.expand_body(pb, scope, ctx) for pb in par.parblocks
            )
            if len(children) == 1:
                return children[0]
            return IRParallel(children)
        if ctx.region_kind is not None:
            raise ExpansionError(
                f"nested data-parallel regions are not supported "
                f"({par.shape!r} inside {ctx.region_kind!r})"
            )
        n = self._resolve_n(par, scope)
        if par.shape == "slice":
            (pb,) = par.parblocks
            copies = tuple(
                self.expand_body(pb, scope, self._copy_ctx(ctx, i, n, "slice"))
                for i in range(n)
            )
            if len(copies) == 1:
                return copies[0]
            return IRParallel(copies)
        assert par.shape == "crossdep"
        parblocks = tuple(
            tuple(
                self.expand_body(pb, scope, self._copy_ctx(ctx, i, n, "crossdep"))
                for i in range(n)
            )
            for pb in par.parblocks
        )
        return IRCrossdep(parblocks)

    @staticmethod
    def _copy_ctx(ctx: _Context, index: int, n: int, kind: str) -> _Context:
        return replace(
            ctx,
            slice=(index, n),
            copy_suffix=ctx.copy_suffix + f"[{index}]",
            region_kind=kind,
        )

    def _expand_manager(
        self, mgr: ManagerNode, scope: _Scope, ctx: _Context
    ) -> IRNode:
        if ctx.region_kind is not None:
            raise ExpansionError(
                f"manager {mgr.name!r} may not appear inside a "
                f"{ctx.region_kind!r} region"
            )
        qname = scope.prefix + mgr.name
        if qname in self.managers:
            raise ExpansionError(f"duplicate manager instance {qname!r}")
        self._member_acc.setdefault(qname, [])
        inner_ctx = replace(ctx, manager=qname)
        child = self.expand_body(mgr.body, scope, inner_ctx)
        queue = (
            self._subst_text(mgr.queue, scope, f"manager {qname!r} queue")
            if "${" in mgr.queue
            else mgr.queue
        )
        handlers = tuple(
            self._qualify_handler(h, scope, qname) for h in mgr.handlers
        )
        owned = tuple(
            opt for opt, info in self.options.items() if info.manager == qname
        )
        self.managers[qname] = ManagerInfo(
            qname=qname,
            queue=queue,
            handlers=handlers,
            options=owned,
            members=tuple(self._member_acc[qname]),
            enter_id=f"{qname}.enter",
            exit_id=f"{qname}.exit",
        )
        return IRManager(qname=qname, child=child)

    def _qualify_handler(
        self, handler: EventHandler, scope: _Scope, manager_qname: str
    ) -> EventHandler:
        option = scope.prefix + handler.option if handler.option else None
        target = handler.target
        if target is not None and "${" in target:
            target = self._subst_text(target, scope, "handler forward target")
        request = handler.request
        if request is not None and "${" in request:
            request = self._subst_text(request, scope, "handler request")
        return EventHandler(
            event=handler.event,
            action=handler.action,
            option=option,
            target=target,
            request=request,
        )

    def _expand_option(
        self, opt: OptionNode, scope: _Scope, ctx: _Context
    ) -> IRNode:
        if ctx.manager is None:
            raise ExpansionError(
                f"option {opt.name!r} is not inside a manager"
            )
        if ctx.region_kind is not None:
            raise ExpansionError(
                f"option {opt.name!r} may not appear inside a "
                f"{ctx.region_kind!r} region"
            )
        qname = scope.prefix + opt.name
        if qname in self.options:
            raise ExpansionError(f"duplicate option instance {qname!r}")
        self._option_acc.setdefault(qname, [])
        inner_ctx = replace(ctx, options=ctx.options + (qname,))
        child = self.expand_body(opt.body, scope, inner_ctx)
        bypasses = tuple(
            (
                self._resolve_stream(bp.src, scope, f"option {qname!r} bypass"),
                self._resolve_stream(bp.dst, scope, f"option {qname!r} bypass"),
            )
            for bp in opt.bypasses
        )
        self.options[qname] = OptionInfo(
            qname=qname,
            manager=ctx.manager,
            default_enabled=opt.enabled,
            bypasses=bypasses,
            members=tuple(self._option_acc[qname]),
        )
        return IROption(qname=qname, child=child)

    def run(self) -> Program:
        scope = _Scope(prefix="", params={}, streams={})
        root = self.expand_body(self.spec.main.body, scope, _Context())
        return Program(
            name=self.name,
            root=root,
            components=self.components,
            managers=self.managers,
            options=self.options,
            registry=self.registry,
        )


def expand(
    spec: Spec,
    registry: Mapping[str, PortSpec],
    *,
    name: str = "app",
    validated: bool = False,
) -> Program:
    """Expand a specification into a :class:`Program`.

    Runs :func:`~repro.core.validator.validate` first (against the same
    registry) unless ``validated=True``.
    """
    if not validated:
        validate(spec, registry=registry)
    return _Expander(spec, registry, name).run()
