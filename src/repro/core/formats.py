"""Port format terms: grammar, instantiation, and unification.

A *format term* declares what travels on a stream per iteration: the
value kind (pixel plane, DCT coefficient field, compressed bitstream, or
scalar), the dtype, the plane shape with symbolic dimensions, an optional
colorspace tag, and the slice-divisibility block of a data-parallel
writer.  Terms are written as whitespace-separated ``key=value`` tokens::

    kind=plane dtype=uint8 shape=height,width colorspace=y block=8

Shape dimensions may be integers, init-parameter names (resolved per
instance), scaled names (``height/2``, ``width*3``), explicit unification
variables (``?h``), or ``*`` wildcards.  Names that do not resolve to an
instance parameter become unification variables scoped to the component
*definition* — all data-parallel copies of one textual component share
them, and a component class reusing a variable across two ports (e.g.
``dtype=?T`` on input and output) declares the ports equal in that
property.

The solver in :mod:`repro.analysis.formats` unifies instantiated terms
across every stream of the expanded graph (ROADMAP item 4: interface
reconciliation a la Zaichenkov et al., realized as a unification/fixpoint
pass without a SAT backend).  This module holds everything the solver
and the validator share: parsing (with precise error messages for X119),
per-instance instantiation, and the weighted union-find over dimension
and tag terms.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from typing import Mapping

import numpy as np

from repro.errors import ComponentError

__all__ = [
    "FormatError",
    "FormatDecl",
    "DimExpr",
    "Term",
    "Unifier",
    "UnifyConflict",
    "parse_format",
    "KINDS",
]

#: Valid ``kind=`` values.  ``plane`` is an ndarray the runtime allocates
#: via ``ensure_buffer``; the other kinds travel as opaque objects.
KINDS = ("plane", "coeffs", "bitstream", "scalar")

_NAME = re.compile(r"^[A-Za-z_]\w*$")
_DIM = re.compile(r"^(?P<base>\?[A-Za-z_]\w*|[A-Za-z_]\w*|\d+|\*)"
                  r"(?:(?P<op>[*/])(?P<k>\d+|[A-Za-z_]\w*))?$")


class FormatError(ComponentError):
    """A format declaration failed to parse or resolve."""


# ---------------------------------------------------------------------------
# Declared (pre-instantiation) terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DimExpr:
    """One declared shape dimension: ``base * scale``.

    ``base`` is ``("const", int)``, ``("name", str)`` (a parameter name or
    definition-scoped variable), ``("var", str)`` (explicit ``?v``), or
    ``("any", "")`` for ``*``.  ``scale_param`` is an ``(op, name)`` pair
    for scales written with a parameter name (``height/factor``), resolved
    per instance.
    """

    base: tuple[str, str | int]
    scale: Fraction = Fraction(1)
    scale_param: tuple[str, str] | None = None

    def render(self) -> str:
        tag, val = self.base
        if tag == "any":
            text = "*"
        elif tag == "var":
            text = f"?{val}"
        else:
            text = str(val)
        if self.scale_param is not None:
            op, pname = self.scale_param
            return f"{text}{op}{pname}"
        if self.scale != 1:
            if self.scale.numerator == 1:
                return f"{text}/{self.scale.denominator}"
            if self.scale.denominator == 1:
                return f"{text}*{self.scale.numerator}"
            return f"{text}*{self.scale.numerator}/{self.scale.denominator}"
        return text


@dataclass(frozen=True)
class FormatDecl:
    """A parsed (but not yet instantiated) port format declaration."""

    kind: str | None = None  # None = unconstrained
    dtype: str | None = None  # raw token: dtype name, param name, ?var
    dims: tuple[DimExpr, ...] | None = None
    colorspace: str | None = None  # raw token: tag, ?var; None = any
    block: int | None = None
    source: str = field(default="", compare=False)

    def instantiate(self, params: Mapping[str, object], scope: str) -> "Term":
        """Resolve parameter names against ``params`` for one instance.

        Unresolved names become variables named ``{scope}.{name}`` so all
        slice copies of a definition (same ``scope``) share them.
        """
        dims: tuple[tuple[str, object], ...] | None = None
        if self.dims is not None:
            resolved = []
            for d in self.dims:
                scale = d.scale
                if d.scale_param is not None:
                    op, pname = d.scale_param
                    p = params.get(pname)
                    if isinstance(p, bool) or not isinstance(p, int) or p <= 0:
                        raise FormatError(
                            f"dimension {d.render()!r}: scale parameter "
                            f"{pname!r} does not resolve to a positive integer"
                        )
                    scale *= Fraction(1, p) if op == "/" else Fraction(p)
                tag, val = d.base
                if tag == "name":
                    p = params.get(val)
                    if isinstance(p, bool) or not isinstance(p, int):
                        p = None
                    if p is not None:
                        tag, val = "const", p
                    else:
                        tag, val = "var", f"{scope}.{val}"
                elif tag == "var":
                    val = f"{scope}.?{val}"
                if tag == "const":
                    out = int(val) * scale
                    if out.denominator != 1 or out < 0:
                        raise FormatError(
                            f"dimension {d.render()!r} resolves to the "
                            f"non-integral value {val}*{scale}"
                        )
                    resolved.append(("const", int(out)))
                elif tag == "var":
                    resolved.append(("var", (val, scale)))
                else:
                    resolved.append(("any", None))
            dims = tuple(resolved)
        dtype = _resolve_tag(self.dtype, params, scope, _coerce_dtype)
        colorspace = _resolve_tag(self.colorspace, params, scope, None)
        return Term(
            kind=self.kind,
            dtype=dtype,
            dims=dims,
            colorspace=colorspace,
            block=self.block,
        )


def _coerce_dtype(value: object) -> str:
    try:
        return np.dtype(str(value)).name
    except TypeError as exc:
        raise FormatError(f"invalid dtype {value!r}") from exc


def _resolve_tag(token, params, scope, coerce):
    """Resolve a dtype/colorspace token to a :class:`Term` tag entry."""
    if token is None:
        return None
    if token.startswith("?"):
        return ("var", f"{scope}.{token}")
    if coerce is _coerce_dtype:
        try:
            return ("val", np.dtype(token).name)
        except TypeError:
            pass
        if token in params:
            return ("val", _coerce_dtype(params[token]))
        return ("var", f"{scope}.{token}")
    return ("val", token)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _parse_dim(token: str) -> DimExpr:
    m = _DIM.match(token)
    if m is None:
        raise FormatError(
            f"bad shape dimension {token!r}: expected an integer, a "
            "parameter name, name/k, name*k, ?var, or *"
        )
    base_raw = m.group("base")
    scale = Fraction(1)
    scale_param: tuple[str, str] | None = None
    if m.group("op"):
        k_raw = m.group("k")
        if k_raw.isdigit():
            k = int(k_raw)
            if k == 0:
                raise FormatError(f"bad shape dimension {token!r}: scale 0")
            scale = Fraction(1, k) if m.group("op") == "/" else Fraction(k)
        else:
            scale_param = (m.group("op"), k_raw)
    if base_raw == "*":
        if scale != 1 or scale_param is not None:
            raise FormatError(f"bad shape dimension {token!r}: cannot scale *")
        return DimExpr(("any", ""))
    if base_raw.startswith("?"):
        return DimExpr(("var", base_raw[1:]), scale, scale_param)
    if base_raw.isdigit():
        return DimExpr(("const", int(base_raw)), scale, scale_param)
    return DimExpr(("name", base_raw), scale, scale_param)


@lru_cache(maxsize=None)
def parse_format(text: str) -> FormatDecl:
    """Parse a format declaration string.

    Raises :class:`FormatError` with a message precise enough to ship in
    an X119 diagnostic.
    """
    kind: str | None = None
    dtype: str | None = None
    dims: tuple[DimExpr, ...] | None = None
    colorspace: str | None = None
    block: int | None = None
    seen: set[str] = set()
    tokens = text.split()
    if not tokens:
        raise FormatError("empty format declaration")
    for token in tokens:
        key, sep, value = token.partition("=")
        if not sep or not value:
            raise FormatError(
                f"bad format token {token!r}: expected key=value"
            )
        if key in seen:
            raise FormatError(f"duplicate format key {key!r}")
        seen.add(key)
        if key == "kind":
            if value != "*" and value not in KINDS:
                raise FormatError(
                    f"unknown kind {value!r}: expected one of {KINDS}"
                )
            kind = None if value == "*" else value
        elif key == "dtype":
            if value != "*":
                _check_dtype_token(value)
                dtype = value
        elif key == "shape":
            if value == "":
                raise FormatError(f"bad shape {value!r}: no dimensions")
            dims = tuple(_parse_dim(d) for d in value.split(","))
        elif key == "colorspace":
            if value != "*":
                _check_tag_token(value, "colorspace")
                colorspace = value
        elif key == "block":
            if not value.isdigit() or int(value) < 1:
                raise FormatError(
                    f"bad block {value!r}: expected a positive integer"
                )
            block = int(value)
        else:
            raise FormatError(
                f"unknown format key {key!r}: expected kind, dtype, shape, "
                "colorspace, or block"
            )
    return FormatDecl(
        kind=kind, dtype=dtype, dims=dims, colorspace=colorspace, block=block,
        source=text,
    )


def _check_dtype_token(value: str) -> None:
    if value.startswith("?"):
        _check_tag_token(value, "dtype")
        return
    try:
        np.dtype(value)
        return
    except TypeError:
        pass
    if not _NAME.match(value):
        raise FormatError(
            f"bad dtype {value!r}: expected a numpy dtype, a parameter "
            "name, ?var, or *"
        )


def _check_tag_token(value: str, what: str) -> None:
    name = value[1:] if value.startswith("?") else value
    if not _NAME.match(name):
        raise FormatError(f"bad {what} {value!r}")


# ---------------------------------------------------------------------------
# Instantiated terms and unification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Term:
    """A format term instantiated for one component instance.

    ``dims`` entries are ``("const", int)``, ``("var", (name, Fraction))``
    (value = var * fraction), or ``("any", None)``.  ``dtype`` and
    ``colorspace`` are ``("val", str)`` or ``("var", name)`` or None.
    """

    kind: str | None = None
    dtype: tuple[str, object] | None = None
    dims: tuple[tuple[str, object], ...] | None = None
    colorspace: tuple[str, object] | None = None
    block: int | None = None


@dataclass(frozen=True)
class UnifyConflict:
    """A failed unification step.

    ``prop`` is ``kind`` / ``dtype`` / ``shape`` / ``colorspace`` /
    ``rank``; ``symbolic`` is True when the failure involves symbolic
    reasoning (non-integral or inconsistent variable solution — X502
    territory) rather than two concrete values disagreeing (X501).
    """

    prop: str
    ours: str
    theirs: str
    symbolic: bool = False


class Unifier:
    """Weighted union-find over dimension variables plus tag variables.

    Dimension variables relate by rational ratios: merging ``H`` with
    ``H2*2`` records ``H = 2*H2`` and propagates any concrete binding
    through the ratio.  Tag variables (dtype, colorspace) unify by
    equality.
    """

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._weight: dict[str, Fraction] = {}  # value(x) = w[x] * value(parent)
        self._bound: dict[str, int] = {}
        self._tag_parent: dict[str, str] = {}
        self._tag_bound: dict[str, str] = {}

    # -- dimensions --------------------------------------------------------

    def _ratio_to_root(self, x: str) -> tuple[str, Fraction]:
        """value(x) = ratio * value(root)."""
        root = x
        ratio = Fraction(1)
        while self._parent.setdefault(root, root) != root:
            self._weight.setdefault(root, Fraction(1))
            ratio *= self._weight[root]
            root = self._parent[root]
        self._weight.setdefault(root, Fraction(1))
        return root, ratio

    def unify_dim(
        self, a: tuple[str, object], b: tuple[str, object]
    ) -> UnifyConflict | None:
        """Unify two dim entries; returns a conflict or None."""
        if a[0] == "any" or b[0] == "any":
            return None
        if a[0] == "const" and b[0] == "const":
            if a[1] != b[1]:
                return UnifyConflict("shape", str(a[1]), str(b[1]))
            return None
        if a[0] == "const":
            a, b = b, a
        # a is ("var", (name, frac)); value = var * frac
        name, frac = a[1]
        root, ratio = self._ratio_to_root(name)
        if b[0] == "const":
            target = Fraction(int(b[1])) / (frac * ratio)
            if target.denominator != 1 or target < 0:
                return UnifyConflict(
                    "shape", f"{name} = {b[1]}/{frac * ratio}", str(b[1]),
                    symbolic=True,
                )
            if root in self._bound:
                if self._bound[root] != target.numerator:
                    return UnifyConflict(
                        "shape",
                        str(self._bound[root] * ratio * frac),
                        str(b[1]),
                    )
                return None
            self._bound[root] = target.numerator
            return None
        b_name, b_frac = b[1]
        b_root, b_ratio = self._ratio_to_root(b_name)
        if root == b_root:
            if frac * ratio != b_frac * b_ratio:
                return UnifyConflict(
                    "shape", f"{name}*{frac}", f"{b_name}*{b_frac}",
                    symbolic=True,
                )
            return None
        # value(root) * ratio * frac == value(b_root) * b_ratio * b_frac
        # attach b_root under root:
        w = (ratio * frac) / (b_ratio * b_frac)
        self._parent[b_root] = root
        self._weight[b_root] = Fraction(1) / w
        if b_root in self._bound:
            bound = self._bound.pop(b_root)
            implied = Fraction(bound) / w
            if implied.denominator != 1 or implied < 0:
                return UnifyConflict(
                    "shape", f"{name}", f"{b_name}={bound}", symbolic=True
                )
            if root in self._bound and self._bound[root] != implied.numerator:
                return UnifyConflict(
                    "shape", str(self._bound[root]), str(implied.numerator)
                )
            self._bound[root] = implied.numerator
        return None

    def resolve_dim(self, entry: tuple[str, object]) -> int | None:
        """Concrete value of a dim entry after unification, if known."""
        if entry[0] == "const":
            return int(entry[1])  # type: ignore[arg-type]
        if entry[0] != "var":
            return None
        name, frac = entry[1]  # type: ignore[misc]
        root, ratio = self._ratio_to_root(name)
        if root not in self._bound:
            return None
        value = Fraction(self._bound[root]) * ratio * frac
        return int(value) if value.denominator == 1 else None

    # -- tags (dtype / colorspace) ----------------------------------------

    def _tag_find(self, x: str) -> str:
        root = x
        while self._tag_parent.setdefault(root, root) != root:
            root = self._tag_parent[root]
        while self._tag_parent[x] != root:
            self._tag_parent[x], x = root, self._tag_parent[x]
        return root

    def unify_tag(
        self, prop: str, a: tuple[str, object], b: tuple[str, object]
    ) -> UnifyConflict | None:
        if a[0] == "val" and b[0] == "val":
            if a[1] != b[1]:
                return UnifyConflict(prop, str(a[1]), str(b[1]))
            return None
        if a[0] == "val":
            a, b = b, a
        root = self._tag_find(str(a[1]))
        if b[0] == "val":
            value = str(b[1])
            if root in self._tag_bound:
                if self._tag_bound[root] != value:
                    return UnifyConflict(prop, self._tag_bound[root], value)
                return None
            self._tag_bound[root] = value
            return None
        b_root = self._tag_find(str(b[1]))
        if root == b_root:
            return None
        self._tag_parent[b_root] = root
        if b_root in self._tag_bound:
            value = self._tag_bound.pop(b_root)
            if root in self._tag_bound and self._tag_bound[root] != value:
                return UnifyConflict(prop, self._tag_bound[root], value)
            self._tag_bound[root] = value
        return None

    def resolve_tag(self, entry: tuple[str, object] | None) -> str | None:
        if entry is None:
            return None
        if entry[0] == "val":
            return str(entry[1])
        root = self._tag_find(str(entry[1]))
        return self._tag_bound.get(root)
