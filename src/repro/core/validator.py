"""Semantic validation of an XSPCL :class:`~repro.core.ast.Spec`.

Checks performed (each with a test in ``tests/core/test_validator.py``):

1. a procedure named ``main`` exists and takes no formals;
2. every ``<call>`` names an existing procedure;
3. the call graph is acyclic — "recursion is currently not supported as
   there is no way to end the recursion" (paper §3.2);
4. call arguments match the callee's formals exactly (streams) or up to
   defaults (params), with no unknown names;
5. instance names (components, calls, managers) are unique inside each
   procedure;
6. ``${name}`` placeholders in stream refs / param values / parallel ``n``
   resolve to a formal of the enclosing procedure;
7. every ``<option>`` lies inside some ``<manager>``'s body; option names
   are unique per manager; each enable/disable/toggle handler references
   an option of its own manager;
8. slice/crossdep ``n`` is a positive integer once resolved (checked here
   when literal, at expansion when parametric);
9. with a registry: component classes exist, stream bindings name exactly
   the class's declared ports, init params satisfy the class schema.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.core.ast import (
    BodyNode,
    CallNode,
    ComponentNode,
    ManagerNode,
    OptionNode,
    ParallelNode,
    Procedure,
    Spec,
)
from repro.core.ports import PortSpec
from repro.errors import ComponentError, ValidationError

__all__ = ["validate"]

_PLACEHOLDER = re.compile(r"\$\{([^}]*)\}")


def _placeholders(value: object) -> list[str]:
    if isinstance(value, str):
        return _PLACEHOLDER.findall(value)
    return []


def _check_placeholders(proc: Procedure, value: object, what: str) -> None:
    formals = proc.formal_param_names() | proc.formal_stream_names()
    for name in _placeholders(value):
        if not name:
            raise ValidationError(
                f"{what} in procedure {proc.name!r} has an empty ${{}} placeholder"
            )
        if name not in formals:
            raise ValidationError(
                f"{what} in procedure {proc.name!r} references unknown formal "
                f"${{{name}}}"
            )


def _iter_calls(body: tuple[BodyNode, ...]):
    for node in body:
        if isinstance(node, CallNode):
            yield node
        elif isinstance(node, ParallelNode):
            for pb in node.parblocks:
                yield from _iter_calls(pb)
        elif isinstance(node, (ManagerNode, OptionNode)):
            yield from _iter_calls(node.body)


def _check_call_graph_acyclic(spec: Spec) -> None:
    edges: dict[str, set[str]] = {
        name: {c.procedure for c in _iter_calls(proc.body)}
        for name, proc in spec.procedures.items()
    }
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in edges}

    def visit(name: str, stack: list[str]) -> None:
        color[name] = GRAY
        stack.append(name)
        for callee in sorted(edges.get(name, ())):
            if callee not in edges:
                continue  # unknown callee reported elsewhere
            if color[callee] == GRAY:
                cycle = stack[stack.index(callee):] + [callee]
                raise ValidationError(
                    "recursive procedure calls are not supported: "
                    + " -> ".join(cycle)
                )
            if color[callee] == WHITE:
                visit(callee, stack)
        stack.pop()
        color[name] = BLACK

    for name in edges:
        if color[name] == WHITE:
            visit(name, [])


class _ProcedureChecker:
    def __init__(
        self,
        spec: Spec,
        proc: Procedure,
        registry: Mapping[str, PortSpec] | None,
    ) -> None:
        self.spec = spec
        self.proc = proc
        self.registry = registry
        self.instance_names: set[str] = set()

    def run(self) -> None:
        self._check_body(self.proc.body, inside_manager=False)

    def _register_instance(self, name: str, what: str) -> None:
        if name in self.instance_names:
            raise ValidationError(
                f"duplicate {what} instance name {name!r} in procedure "
                f"{self.proc.name!r}"
            )
        self.instance_names.add(name)

    def _check_body(self, body: tuple[BodyNode, ...], *, inside_manager: bool) -> None:
        for node in body:
            if isinstance(node, ComponentNode):
                self._check_component(node)
            elif isinstance(node, CallNode):
                self._check_call(node)
            elif isinstance(node, ParallelNode):
                self._check_parallel(node, inside_manager=inside_manager)
            elif isinstance(node, ManagerNode):
                self._check_manager(node)
            elif isinstance(node, OptionNode):
                if not inside_manager:
                    raise ValidationError(
                        f"option {node.name!r} in procedure {self.proc.name!r} "
                        "is not contained in any manager"
                    )
                self._check_body(node.body, inside_manager=True)
                for bp in node.bypasses:
                    _check_placeholders(self.proc, bp.src, f"bypass of option {node.name!r}")
                    _check_placeholders(self.proc, bp.dst, f"bypass of option {node.name!r}")
            else:  # pragma: no cover - parser prevents this
                raise ValidationError(f"unknown body node {type(node).__name__}")

    def _check_component(self, comp: ComponentNode) -> None:
        self._register_instance(comp.name, "component")
        for port, ref in comp.streams.items():
            _check_placeholders(
                self.proc, ref, f"stream binding {port!r} of component {comp.name!r}"
            )
        for pname, value in comp.params.items():
            _check_placeholders(
                self.proc, value, f"param {pname!r} of component {comp.name!r}"
            )
        if self.registry is not None:
            spec = self.registry.get(comp.class_name)
            if spec is None:
                raise ValidationError(
                    f"component {comp.name!r} uses unknown class "
                    f"{comp.class_name!r}"
                )
            declared = set(spec.all_ports)
            bound = set(comp.streams)
            if bound != declared:
                missing = sorted(declared - bound)
                extra = sorted(bound - declared)
                parts = []
                if missing:
                    parts.append(f"unbound ports {missing}")
                if extra:
                    parts.append(f"unknown ports {extra}")
                raise ValidationError(
                    f"component {comp.name!r} (class {comp.class_name!r}): "
                    + "; ".join(parts)
                )
            try:
                spec.check_params(comp.class_name, set(comp.params))
            except ComponentError as exc:
                raise ValidationError(f"component {comp.name!r}: {exc}") from exc

    def _check_call(self, call: CallNode) -> None:
        self._register_instance(call.name, "call")
        callee = self.spec.procedures.get(call.procedure)
        if callee is None:
            raise ValidationError(
                f"call {call.name!r} targets unknown procedure {call.procedure!r}"
            )
        # Stream arguments must cover the formals exactly.
        formals = callee.formal_stream_names()
        args = set(call.streams)
        if args != formals:
            missing = sorted(formals - args)
            extra = sorted(args - formals)
            parts = []
            if missing:
                parts.append(f"missing stream args {missing}")
            if extra:
                parts.append(f"unknown stream args {extra}")
            raise ValidationError(
                f"call {call.name!r} -> {call.procedure!r}: " + "; ".join(parts)
            )
        # Param arguments: subset of formals; all non-default formals given.
        param_formals = {f.name: f for f in callee.param_formals}
        unknown = sorted(set(call.params) - set(param_formals))
        if unknown:
            raise ValidationError(
                f"call {call.name!r} -> {call.procedure!r}: unknown params {unknown}"
            )
        missing = sorted(
            name
            for name, formal in param_formals.items()
            if formal.default is None and name not in call.params
        )
        if missing:
            raise ValidationError(
                f"call {call.name!r} -> {call.procedure!r}: missing required "
                f"params {missing}"
            )
        for sname, ref in call.streams.items():
            _check_placeholders(self.proc, ref, f"stream arg {sname!r} of call {call.name!r}")
        for pname, value in call.params.items():
            _check_placeholders(self.proc, value, f"param {pname!r} of call {call.name!r}")

    def _check_parallel(self, par: ParallelNode, *, inside_manager: bool) -> None:
        if par.n is not None:
            _check_placeholders(self.proc, par.n, "parallel n")
            if isinstance(par.n, bool) or (
                isinstance(par.n, (int, float)) and not isinstance(par.n, bool)
                and (not float(par.n).is_integer() or int(par.n) < 1)
            ):
                raise ValidationError(
                    f"parallel n must be a positive integer, got {par.n!r}"
                )
        for pb in par.parblocks:
            if not pb:
                raise ValidationError(
                    f"empty <parblock> in procedure {self.proc.name!r}"
                )
            self._check_body(pb, inside_manager=inside_manager)

    def _check_manager(self, mgr: ManagerNode) -> None:
        self._register_instance(mgr.name, "manager")
        # Options belonging to this manager: any depth below, but not
        # crossing into a nested manager.
        options: dict[str, OptionNode] = {}

        def collect(body: tuple[BodyNode, ...]) -> None:
            for node in body:
                if isinstance(node, OptionNode):
                    if node.name in options:
                        raise ValidationError(
                            f"manager {mgr.name!r} has duplicate option "
                            f"{node.name!r}"
                        )
                    options[node.name] = node
                    collect(node.body)
                elif isinstance(node, ParallelNode):
                    for pb in node.parblocks:
                        collect(pb)
                # ManagerNode: stop — nested managers own their options.

        collect(mgr.body)
        for handler in mgr.handlers:
            if handler.action in ("enable", "disable", "toggle"):
                assert handler.option is not None  # parser guarantees
                if handler.option not in options:
                    raise ValidationError(
                        f"manager {mgr.name!r}: handler for event "
                        f"{handler.event!r} references unknown option "
                        f"{handler.option!r}"
                    )
        self._check_body(mgr.body, inside_manager=True)


def validate(spec: Spec, *, registry: Mapping[str, PortSpec] | None = None) -> Spec:
    """Validate ``spec``; returns it unchanged on success.

    ``registry`` maps component class names to :class:`PortSpec`; when
    given, component classes, port bindings and param schemas are checked
    too.
    """
    if "main" not in spec.procedures:
        raise ValidationError("specification has no procedure named 'main'")
    main = spec.procedures["main"]
    if main.stream_formals or main.param_formals:
        raise ValidationError("procedure 'main' must not declare formal parameters")
    for proc in spec.procedures.values():
        for formal in proc.param_formals:
            if _placeholders(formal.default):
                raise ValidationError(
                    f"procedure {proc.name!r}: default of param "
                    f"{formal.name!r} must be a literal, not a placeholder"
                )
    _check_call_graph_acyclic(spec)
    for proc in spec.procedures.values():
        _ProcedureChecker(spec, proc, registry).run()
    return spec
