"""Semantic validation of an XSPCL :class:`~repro.core.ast.Spec`.

Checks performed (each with a test in ``tests/core/test_validator.py``):

1. a procedure named ``main`` exists and takes no formals;
2. every ``<call>`` names an existing procedure;
3. the call graph is acyclic — "recursion is currently not supported as
   there is no way to end the recursion" (paper §3.2);
4. call arguments match the callee's formals exactly (streams) or up to
   defaults (params), with no unknown names;
5. instance names (components, calls, managers) are unique inside each
   procedure;
6. ``${name}`` placeholders in stream refs / param values / parallel ``n``
   resolve to a formal of the enclosing procedure;
7. every ``<option>`` lies inside some ``<manager>``'s body; option names
   are unique per manager; each enable/disable/toggle handler references
   an option of its own manager;
8. slice/crossdep ``n`` is a positive integer once resolved (checked here
   when literal, at expansion when parametric);
9. with a registry: component classes exist, stream bindings name exactly
   the class's declared ports, init params satisfy the class schema.

The checks are built on the collect-all diagnostic machinery of
:mod:`repro.analysis.diagnostics`: :func:`collect_diagnostics` reports
**every** violation (codes ``X101``–``X117``, with source lines), and
:func:`validate` keeps the historical library API by raising a single
:class:`~repro.errors.ValidationError` that aggregates all of them.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.analysis.diagnostics import DiagnosticBag, Severity
from repro.core.ast import (
    BodyNode,
    CallNode,
    ComponentNode,
    ManagerNode,
    OptionNode,
    ParallelNode,
    Procedure,
    Spec,
)
from repro.core.formats import FormatError, parse_format
from repro.core.ports import PortSpec
from repro.errors import ComponentError, ValidationError

__all__ = ["validate", "collect_diagnostics"]

_PLACEHOLDER = re.compile(r"\$\{([^}]*)\}")


def _placeholders(value: object) -> list[str]:
    if isinstance(value, str):
        return _PLACEHOLDER.findall(value)
    return []


def _check_placeholders(
    bag: DiagnosticBag,
    proc: Procedure,
    value: object,
    what: str,
    line: int | None = None,
) -> None:
    formals = proc.formal_param_names() | proc.formal_stream_names()
    for name in _placeholders(value):
        if not name:
            bag.report(
                "X108",
                f"{what} in procedure {proc.name!r} has an empty ${{}} placeholder",
                line=line,
            )
        elif name not in formals:
            bag.report(
                "X108",
                f"{what} in procedure {proc.name!r} references unknown formal "
                f"${{{name}}}",
                line=line,
            )


def _iter_calls(body: tuple[BodyNode, ...]):
    for node in body:
        if isinstance(node, CallNode):
            yield node
        elif isinstance(node, ParallelNode):
            for pb in node.parblocks:
                yield from _iter_calls(pb)
        elif isinstance(node, (ManagerNode, OptionNode)):
            yield from _iter_calls(node.body)


def _check_call_graph_acyclic(bag: DiagnosticBag, spec: Spec) -> None:
    edges: dict[str, set[str]] = {
        name: {c.procedure for c in _iter_calls(proc.body)}
        for name, proc in spec.procedures.items()
    }
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in edges}

    def visit(name: str, stack: list[str]) -> None:
        color[name] = GRAY
        stack.append(name)
        for callee in sorted(edges.get(name, ())):
            if callee not in edges:
                continue  # unknown callee reported elsewhere
            if color[callee] == GRAY:
                cycle = stack[stack.index(callee):] + [callee]
                bag.report(
                    "X104",
                    "recursive procedure calls are not supported: "
                    + " -> ".join(cycle),
                    line=spec.procedures[callee].line,
                )
                continue
            if color[callee] == WHITE:
                visit(callee, stack)
        stack.pop()
        color[name] = BLACK

    for name in edges:
        if color[name] == WHITE:
            visit(name, [])


class _ProcedureChecker:
    def __init__(
        self,
        bag: DiagnosticBag,
        spec: Spec,
        proc: Procedure,
        registry: Mapping[str, PortSpec] | None,
    ) -> None:
        self.bag = bag
        self.spec = spec
        self.proc = proc
        self.registry = registry
        self.instance_names: set[str] = set()

    def run(self) -> None:
        self._check_body(self.proc.body, inside_manager=False)

    def _register_instance(self, name: str, what: str, line: int | None) -> None:
        if name in self.instance_names:
            self.bag.report(
                "X107",
                f"duplicate {what} instance name {name!r} in procedure "
                f"{self.proc.name!r}",
                line=line,
            )
        self.instance_names.add(name)

    def _check_body(self, body: tuple[BodyNode, ...], *, inside_manager: bool) -> None:
        for node in body:
            if isinstance(node, ComponentNode):
                self._check_component(node)
            elif isinstance(node, CallNode):
                self._check_call(node)
            elif isinstance(node, ParallelNode):
                self._check_parallel(node, inside_manager=inside_manager)
            elif isinstance(node, ManagerNode):
                self._check_manager(node)
            elif isinstance(node, OptionNode):
                if not inside_manager:
                    self.bag.report(
                        "X109",
                        f"option {node.name!r} in procedure {self.proc.name!r} "
                        "is not contained in any manager",
                        line=node.line,
                    )
                self._check_body(node.body, inside_manager=True)
                for bp in node.bypasses:
                    _check_placeholders(
                        self.bag, self.proc, bp.src,
                        f"bypass of option {node.name!r}", bp.line,
                    )
                    _check_placeholders(
                        self.bag, self.proc, bp.dst,
                        f"bypass of option {node.name!r}", bp.line,
                    )
            else:  # pragma: no cover - parser prevents this
                raise ValidationError(f"unknown body node {type(node).__name__}")

    def _check_component(self, comp: ComponentNode) -> None:
        self._register_instance(comp.name, "component", comp.line)
        for port, ref in comp.streams.items():
            _check_placeholders(
                self.bag, self.proc, ref,
                f"stream binding {port!r} of component {comp.name!r}", comp.line,
            )
        for port, fmt in comp.formats.items():
            line = comp.stream_lines.get(port, comp.line)
            if port not in comp.streams:
                self.bag.report(
                    "X119",
                    f"component {comp.name!r}: format declared for unbound "
                    f"port {port!r}",
                    line=line,
                )
                continue
            _check_placeholders(
                self.bag, self.proc, fmt,
                f"format of port {port!r} of component {comp.name!r}", line,
            )
            if "${" not in fmt:
                try:
                    parse_format(fmt)
                except FormatError as exc:
                    self.bag.report(
                        "X119",
                        f"component {comp.name!r}, port {port!r}: {exc}",
                        line=line,
                    )
        for pname, value in comp.params.items():
            _check_placeholders(
                self.bag, self.proc, value,
                f"param {pname!r} of component {comp.name!r}", comp.line,
            )
        if self.registry is not None:
            spec = self.registry.get(comp.class_name)
            if spec is None:
                self.bag.report(
                    "X114",
                    f"component {comp.name!r} uses unknown class "
                    f"{comp.class_name!r}",
                    line=comp.line,
                )
                return
            declared = set(spec.all_ports)
            bound = set(comp.streams)
            if bound != declared:
                missing = sorted(declared - bound)
                extra = sorted(bound - declared)
                parts = []
                if missing:
                    parts.append(f"unbound ports {missing}")
                if extra:
                    parts.append(f"unknown ports {extra}")
                self.bag.report(
                    "X115",
                    f"component {comp.name!r} (class {comp.class_name!r}): "
                    + "; ".join(parts),
                    line=comp.line,
                )
            try:
                spec.check_params(comp.class_name, set(comp.params))
            except ComponentError as exc:
                self.bag.report(
                    "X116", f"component {comp.name!r}: {exc}", line=comp.line
                )

    def _check_call(self, call: CallNode) -> None:
        self._register_instance(call.name, "call", call.line)
        callee = self.spec.procedures.get(call.procedure)
        if callee is None:
            self.bag.report(
                "X103",
                f"call {call.name!r} targets unknown procedure {call.procedure!r}",
                line=call.line,
            )
            return
        # Stream arguments must cover the formals exactly.
        formals = callee.formal_stream_names()
        args = set(call.streams)
        if args != formals:
            missing = sorted(formals - args)
            extra = sorted(args - formals)
            parts = []
            if missing:
                parts.append(f"missing stream args {missing}")
            if extra:
                parts.append(f"unknown stream args {extra}")
            self.bag.report(
                "X105",
                f"call {call.name!r} -> {call.procedure!r}: " + "; ".join(parts),
                line=call.line,
            )
        # Param arguments: subset of formals; all non-default formals given.
        param_formals = {f.name: f for f in callee.param_formals}
        unknown = sorted(set(call.params) - set(param_formals))
        if unknown:
            self.bag.report(
                "X106",
                f"call {call.name!r} -> {call.procedure!r}: unknown params {unknown}",
                line=call.line,
            )
        missing = sorted(
            name
            for name, formal in param_formals.items()
            if formal.default is None and name not in call.params
        )
        if missing:
            self.bag.report(
                "X106",
                f"call {call.name!r} -> {call.procedure!r}: missing required "
                f"params {missing}",
                line=call.line,
            )
        for sname, ref in call.streams.items():
            _check_placeholders(
                self.bag, self.proc, ref,
                f"stream arg {sname!r} of call {call.name!r}", call.line,
            )
        for pname, value in call.params.items():
            _check_placeholders(
                self.bag, self.proc, value,
                f"param {pname!r} of call {call.name!r}", call.line,
            )

    def _check_parallel(self, par: ParallelNode, *, inside_manager: bool) -> None:
        if par.n is not None:
            _check_placeholders(self.bag, self.proc, par.n, "parallel n", par.line)
            if isinstance(par.n, bool) or (
                isinstance(par.n, (int, float)) and not isinstance(par.n, bool)
                and (not float(par.n).is_integer() or int(par.n) < 1)
            ):
                self.bag.report(
                    "X112",
                    f"parallel n must be a positive integer, got {par.n!r}",
                    line=par.line,
                )
        for pb in par.parblocks:
            if not pb:
                self.bag.report(
                    "X113",
                    f"empty <parblock> in procedure {self.proc.name!r}",
                    line=par.line,
                )
                continue
            self._check_body(pb, inside_manager=inside_manager)

    def _check_manager(self, mgr: ManagerNode) -> None:
        self._register_instance(mgr.name, "manager", mgr.line)
        # Options belonging to this manager: any depth below, but not
        # crossing into a nested manager.
        options: dict[str, OptionNode] = {}

        def collect(body: tuple[BodyNode, ...]) -> None:
            for node in body:
                if isinstance(node, OptionNode):
                    if node.name in options:
                        self.bag.report(
                            "X110",
                            f"manager {mgr.name!r} has duplicate option "
                            f"{node.name!r}",
                            line=node.line,
                        )
                    options[node.name] = node
                    collect(node.body)
                elif isinstance(node, ParallelNode):
                    for pb in node.parblocks:
                        collect(pb)
                # ManagerNode: stop — nested managers own their options.

        collect(mgr.body)
        for handler in mgr.handlers:
            if handler.action in ("enable", "disable", "toggle"):
                assert handler.option is not None  # parser guarantees
                if handler.option not in options:
                    self.bag.report(
                        "X111",
                        f"manager {mgr.name!r}: handler for event "
                        f"{handler.event!r} references unknown option "
                        f"{handler.option!r}",
                        line=handler.line,
                    )
        self._check_body(mgr.body, inside_manager=True)


def collect_diagnostics(
    spec: Spec, *, registry: Mapping[str, PortSpec] | None = None
) -> DiagnosticBag:
    """Run all semantic checks, collecting every violation.

    Unlike :func:`validate` this never raises on semantic problems; it
    returns a :class:`~repro.analysis.diagnostics.DiagnosticBag` whose
    entries carry stable codes and source lines.  ``xspcl lint`` and
    ``xspcl validate`` are built on this entry point.
    """
    bag = DiagnosticBag()
    if "main" not in spec.procedures:
        bag.report("X101", "specification has no procedure named 'main'")
    else:
        main = spec.procedures["main"]
        if main.stream_formals or main.param_formals:
            bag.report(
                "X102",
                "procedure 'main' must not declare formal parameters",
                line=main.line,
            )
    for proc in spec.procedures.values():
        for formal in proc.param_formals:
            if _placeholders(formal.default):
                bag.report(
                    "X117",
                    f"procedure {proc.name!r}: default of param "
                    f"{formal.name!r} must be a literal, not a placeholder",
                    line=proc.line,
                )
    _check_call_graph_acyclic(bag, spec)
    for proc in spec.procedures.values():
        _ProcedureChecker(bag, spec, proc, registry).run()
    return bag


def validate(spec: Spec, *, registry: Mapping[str, PortSpec] | None = None) -> Spec:
    """Validate ``spec``; returns it unchanged on success.

    ``registry`` maps component class names to :class:`PortSpec`; when
    given, component classes, port bindings and param schemas are checked
    too.

    Raises :class:`~repro.errors.ValidationError` aggregating **all**
    violations (one per line); the exception's ``diagnostics`` attribute
    holds the structured :class:`Diagnostic` list.
    """
    bag = collect_diagnostics(spec, registry=registry)
    errors = [d for d in bag.sorted() if d.severity >= Severity.ERROR]
    if errors:
        if len(errors) == 1:
            message = errors[0].message
        else:
            message = f"{len(errors)} validation errors:\n" + "\n".join(
                "  " + d.message for d in errors
            )
        exc = ValidationError(message)
        exc.diagnostics = errors  # type: ignore[attr-defined]
        raise exc
    return spec
