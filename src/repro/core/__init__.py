"""XSPCL — the coordination language (the paper's primary contribution).

Pipeline::

    XML text --parser--> Spec (AST) --validator--> checked Spec
             --expander--> Program (IR + component instances)
             --Program.build_graph(...)--> TaskGraph per option configuration

The :class:`~repro.core.builder.AppBuilder` offers the same expressive
power as the XML syntax through a fluent Python API (standing in for the
graphical front-end the paper leaves as future work), and
:mod:`repro.core.xmlio` serializes an AST back to XSPCL so the two entry
points round-trip.
"""

from repro.core.ast import (
    CallNode,
    ComponentNode,
    EventHandler,
    ManagerNode,
    OptionNode,
    ParallelNode,
    ParamFormal,
    Procedure,
    Spec,
    StreamFormal,
)
from repro.core.parser import parse_file, parse_string
from repro.core.validator import validate
from repro.core.expander import expand
from repro.core.program import ComponentInstance, ManagerInfo, OptionInfo, Program
from repro.core.builder import AppBuilder
from repro.core.xmlio import spec_to_xml

__all__ = [
    "Spec",
    "Procedure",
    "ComponentNode",
    "CallNode",
    "ParallelNode",
    "ManagerNode",
    "OptionNode",
    "EventHandler",
    "StreamFormal",
    "ParamFormal",
    "parse_file",
    "parse_string",
    "validate",
    "expand",
    "Program",
    "ComponentInstance",
    "ManagerInfo",
    "OptionInfo",
    "AppBuilder",
    "spec_to_xml",
]
