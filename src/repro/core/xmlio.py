"""Serialize a Spec AST back to XSPCL XML text.

Guarantees round-trip stability: ``parse_string(spec_to_xml(s))`` equals
``s`` for any valid Spec (property-tested).  Useful for tooling (the
builder emits XML for inspection) and for the paper's framework position
of XSPCL as an exchange format between front-end and back-ends.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.core.ast import (
    BodyNode,
    CallNode,
    ComponentNode,
    ManagerNode,
    OptionNode,
    ParallelNode,
    Procedure,
    Spec,
    Value,
)

__all__ = ["spec_to_xml"]


def _fmt(value: Value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _emit_body(parent: ET.Element, body: tuple[BodyNode, ...]) -> None:
    for node in body:
        if isinstance(node, ComponentNode):
            elem = ET.SubElement(
                parent, "component", name=node.name, **{"class": node.class_name}
            )
            for port, ref in node.streams.items():
                attrs = {"port": port, "ref": ref}
                if port in node.formats:
                    attrs["format"] = node.formats[port]
                ET.SubElement(elem, "stream", **attrs)
            for pname, value in node.params.items():
                ET.SubElement(elem, "param", name=pname, value=_fmt(value))
            if node.reconfigure is not None:
                ET.SubElement(elem, "reconfigure", request=node.reconfigure)
        elif isinstance(node, CallNode):
            elem = ET.SubElement(
                parent, "call", procedure=node.procedure, name=node.name
            )
            for sname, ref in node.streams.items():
                ET.SubElement(elem, "stream", name=sname, ref=ref)
            for pname, value in node.params.items():
                ET.SubElement(elem, "param", name=pname, value=_fmt(value))
        elif isinstance(node, ParallelNode):
            attrs = {"shape": node.shape}
            if node.n is not None:
                attrs["n"] = _fmt(node.n)
            elem = ET.SubElement(parent, "parallel", **attrs)
            for pb in node.parblocks:
                pb_elem = ET.SubElement(elem, "parblock")
                _emit_body(pb_elem, pb)
        elif isinstance(node, ManagerNode):
            elem = ET.SubElement(parent, "manager", name=node.name, queue=node.queue)
            for h in node.handlers:
                attrs = {"event": h.event, "action": h.action}
                if h.option is not None:
                    attrs["option"] = h.option
                if h.target is not None:
                    attrs["target"] = h.target
                if h.request is not None:
                    attrs["request"] = h.request
                ET.SubElement(elem, "on", **attrs)
            body_elem = ET.SubElement(elem, "body")
            _emit_body(body_elem, node.body)
        elif isinstance(node, OptionNode):
            elem = ET.SubElement(
                parent,
                "option",
                name=node.name,
                enabled="true" if node.enabled else "false",
            )
            for bp in node.bypasses:
                ET.SubElement(elem, "bypass", **{"from": bp.src, "to": bp.dst})
            _emit_body(elem, node.body)
        else:  # pragma: no cover
            raise TypeError(f"unknown body node {type(node).__name__}")


def _emit_procedure(parent: ET.Element, proc: Procedure) -> None:
    elem = ET.SubElement(parent, "procedure", name=proc.name)
    if proc.stream_formals or proc.param_formals:
        params = ET.SubElement(elem, "params")
        for sf in proc.stream_formals:
            ET.SubElement(params, "stream", name=sf.name)
        for pf in proc.param_formals:
            attrs = {"name": pf.name}
            if pf.default is not None:
                attrs["default"] = _fmt(pf.default)
            ET.SubElement(params, "param", **attrs)
    body = ET.SubElement(elem, "body")
    _emit_body(body, proc.body)


def spec_to_xml(spec: Spec, *, pretty: bool = True) -> str:
    """Render ``spec`` as an XSPCL document string."""
    root = ET.Element("xspcl", version=spec.version)
    for proc in spec.procedures.values():
        _emit_procedure(root, proc)
    raw = ET.tostring(root, encoding="unicode")
    if not pretty:
        return raw
    dom = minidom.parseString(raw)
    text = dom.toprettyxml(indent="  ")
    # minidom prepends an XML declaration; keep it but drop blank lines.
    return "\n".join(line for line in text.splitlines() if line.strip()) + "\n"
