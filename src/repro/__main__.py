"""``python -m repro`` — entry point for the XSPCL toolchain CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
