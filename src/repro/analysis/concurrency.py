"""Concurrency / reconfiguration-safety passes (codes ``X3xx``).

The scheduler's deadlock-freedom argument (DESIGN §6) rests on two
invariants: the per-iteration dependency graph is acyclic, and stream
capacity equals the pipeline depth so a producer can never block behind
its own consumers.  X301 checks the first invariant on the *combined*
graph — control edges plus the data edges every stream induces from its
writer to its readers.  A cycle there means some iteration can never
complete: every component on the cycle waits for data only the others
can produce, and no pipeline depth or stream capacity rescues it.

The remaining passes guard the stream model (X302/X303, surfaced from
:func:`repro.core.program.stream_problems`), flag non-series-parallel
regions that silently break SPC performance prediction (X304, paper §2),
and sanity-check the event plumbing managers depend on (X305/X306).
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticBag
from repro.core.program import Program, ProgramGraph, stream_problems
from repro.graph.analysis import is_series_parallel

__all__ = [
    "check_configuration",
    "check_event_queues",
]

_PROBLEM_CODE = {
    "multiple-writers": "X302",
    "no-writer": "X205",
    "unordered": "X303",
}


def _combined_dependencies(
    program: Program, pg: ProgramGraph
) -> dict[str, set[str]]:
    """Control edges plus stream-induced writer->reader data edges.

    Sliced writer/reader pairs only depend index-to-index (each copy
    processes its own frame region); crossdep halos are already explicit
    control edges.
    """
    succ: dict[str, set[str]] = {n.node_id: set() for n in pg.graph}
    for u, v in pg.graph.edges():
        succ[u].add(v)
    for table in pg.streams.values():
        for writer in table.writers:
            w_inst = program.components[writer.instance_id]
            for reader in table.readers:
                r_inst = program.components[reader.instance_id]
                if (
                    w_inst.slice is not None
                    and r_inst.slice is not None
                    and w_inst.slice[0] != r_inst.slice[0]
                ):
                    continue
                succ[writer.instance_id].add(reader.instance_id)
    return succ


def _cyclic_sccs(succ: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components that contain a cycle (iterative Tarjan)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    result: list[list[str]] = []

    for root in succ:
        if root in index:
            continue
        work = [(root, iter(sorted(succ[root])))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(succ[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1 or node in succ.get(node, ()):
                    result.append(sorted(scc))
    return result


def check_configuration(
    bag: DiagnosticBag,
    program: Program,
    pg: ProgramGraph,
    *,
    context: str = "",
    crossdep_lines: tuple[int | None, ...] = (),
) -> None:
    """Graph-level safety checks for one built configuration.

    ``context`` describes how the configuration differs from the defaults
    (empty for the default configuration) and is appended to
    configuration-dependent messages.
    """

    def line_of(instance_id: str) -> int | None:
        inst = program.components.get(instance_id)
        return inst.line if inst is not None else None

    # X301 — pipeline deadlock: cycle in control+data dependencies.
    succ = _combined_dependencies(program, pg)
    cyclic_nodes: set[str] = set()
    for scc in _cyclic_sccs(succ):
        cyclic_nodes.update(scc)
        bag.report(
            "X301",
            "cyclic stream dependencies would deadlock the pipeline: "
            + " -> ".join(scc + [scc[0]])
            + context,
            line=min(
                (ln for ln in map(line_of, scc) if ln is not None), default=None
            ),
            where=scc[0],
        )

    # X302 / X205 / X303 — stream-table sanity, collect-all.
    for problem in stream_problems(program, pg.graph, pg.streams):
        if problem.kind == "unordered" and set(problem.instances) <= cyclic_nodes:
            continue  # the cycle report already covers this pair
        bag.report(
            _PROBLEM_CODE[problem.kind],
            problem.message + context,
            line=next(
                (ln for ln in map(line_of, problem.instances) if ln is not None),
                None,
            ),
            where=problem.stream,
        )

    # X304 — non-SP graph: SPC performance prediction is inaccurate until
    # the region is SP-ized (paper §2: "it has to be transformed into SP
    # form by adding a synchronization point between the parblocks").
    if len(pg.graph) > 0 and not is_series_parallel(pg.graph):
        bag.report(
            "X304",
            "task graph is not series-parallel (crossdep region): SPC "
            "performance prediction is approximate; sp_ize() adds the "
            "synchronization points the paper prescribes",
            line=next((ln for ln in crossdep_lines if ln is not None), None),
        )


def check_event_queues(bag: DiagnosticBag, program: Program) -> None:
    """X305/X306/X405: sanity checks on the event plumbing.

    Senders are component instances with a ``queue`` init parameter (the
    convention used by ``timer`` and ``monitor`` sources) plus ``forward``
    handler targets; receivers are manager queues.

    X405 is the static counterpart of the runtime's
    :class:`~repro.hinch.events.EventStormWarning` high-water check: a
    ``forward`` handler reposts the event *under the same name*, so if
    the managers' forward edges close a cycle over ``(queue, event)``
    pairs, one injected event bounces between the queues forever and the
    queues grow without bound.
    """
    senders: set[str] = set()
    for inst in program.components.values():
        queue = inst.params.get("queue")
        if isinstance(queue, str):
            senders.add(queue)
    receivers = {mgr.queue for mgr in program.managers.values()}
    forward_targets: set[str] = set()
    for mgr in program.managers.values():
        for handler in mgr.handlers:
            if handler.action == "forward" and handler.target is not None:
                forward_targets.add(handler.target)
    senders |= forward_targets

    for mgr in sorted(program.managers.values(), key=lambda m: m.qname):
        if mgr.queue not in senders:
            bag.report(
                "X305",
                f"manager {mgr.qname!r} polls queue {mgr.queue!r} but no "
                "component or forward handler sends to it; its handlers can "
                "never fire",
                where=mgr.qname,
            )
    for target in sorted(forward_targets):
        if target not in receivers:
            bag.report(
                "X306",
                f"events are forwarded to queue {target!r} but no manager "
                "polls it; forwarded events are dropped",
            )

    # X405 — forward cycle: an edge (queue, event) -> (target, event) for
    # every forward handler of a manager polling ``queue``; forwarding
    # preserves the event name, so a cycle here loops one event forever.
    forward_succ: dict[tuple[str, str], set[tuple[str, str]]] = {}
    for mgr in program.managers.values():
        for handler in mgr.handlers:
            if handler.action != "forward" or handler.target is None:
                continue
            src = (mgr.queue, handler.event)
            dst = (handler.target, handler.event)
            forward_succ.setdefault(src, set()).add(dst)
            forward_succ.setdefault(dst, set())
    for scc in _cyclic_sccs(forward_succ):  # type: ignore[arg-type]
        queues = [queue for queue, _ in scc]
        event = scc[0][1]
        bag.report(
            "X405",
            f"event {event!r} is forwarded in a cycle: "
            + " -> ".join(queues + [queues[0]])
            + "; one posted event circulates forever and the queues grow "
            "without bound (the runtime's EventQueue high-water warning "
            "fires, but the storm is statically avoidable)",
            where=queues[0],
        )
