"""Whole-network interface reconciliation: the X5xx format-solving pass.

Every port carries a declared format term (see :mod:`repro.core.formats`)
— from its component class's :class:`~repro.core.ports.PortSpec` or from
a per-binding ``<stream format=...>`` override.  This pass instantiates
the terms per component instance and unifies them across every stream of
one built configuration, in the spirit of interface reconciliation for
KPNs (Zaichenkov et al., PAPERS.md) but as a pure unification/fixpoint
pass — no SAT backend.

Diagnostics:

* **X501** (error) — two endpoints of a stream disagree on a concrete
  property (shape, kind, colorspace, rank, or a non-convertible dtype);
* **X502** (error) — a symbolic dimension has no integral solution
  (e.g. ``height/2`` of an odd height, or ``H`` unified with ``H/2``);
* **X503** (error) — a sliced writer's solved height is not divisible by
  its declared ``block`` (subsumes the runtime ``rows()`` geometry check);
* **X504** (warning) — a plane dtype mismatch that the shipped
  ``convert_plane`` component could bridge (named in the message);
* **X505** (info) — an endpoint without any format declaration; the
  stream degrades to first-write inference, never an error;
* **X506** (info) — an X504 site the runtimes bridge themselves: both
  backends auto-insert the ``convert_plane`` at build time
  (:func:`auto_insert_converters`), and the chain-fusion pass
  (``--fuse``) then absorbs the inserted converter into the producer or
  consumer chain so the bridge costs no extra dispatch.

The solved per-stream formats double as the runtimes' authoritative
buffer expectations (:func:`runtime_expectations`) — a declared/observed
divergence that slipped past lint raises a structured
:class:`~repro.errors.StreamFormatError` instead of a late geometry
surprise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.diagnostics import DiagnosticBag
from repro.core.formats import (
    FormatDecl,
    FormatError,
    Term,
    Unifier,
    UnifyConflict,
    parse_format,
)

__all__ = [
    "SolvedStream",
    "FormatSolution",
    "ConversionSite",
    "check_formats",
    "runtime_expectations",
    "auto_insert_converters",
    "CONVERTER_COMPONENT",
]

#: Shipped component that bridges plane dtype mismatches (X504 suggests it).
CONVERTER_COMPONENT = "convert_plane"


@dataclass
class SolvedStream:
    """One stream's reconciled format after unification."""

    kind: str | None = None
    dtype: str | None = None
    shape: tuple[int | None, ...] | None = None
    colorspace: str | None = None
    declared: bool = False  # at least one endpoint declared a format
    fully_declared: bool = True  # every endpoint declared a format
    conflicted: bool = False  # an X501/X502 fired on this stream

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "dtype": self.dtype,
            "shape": list(self.shape) if self.shape is not None else None,
            "colorspace": self.colorspace,
            "declared": self.declared,
        }


@dataclass(frozen=True)
class ConversionSite:
    """One X504 dtype bridge the runtimes insert a ``convert_plane`` for.

    The stream keeps the *writer's* dtype; the reader endpoint here is
    rebound to a derived stream carrying ``dst_dtype``.
    """

    stream: str
    reader: str  # reader instance id
    port: str  # reader port rebound to the converted stream
    src_dtype: str
    dst_dtype: str


@dataclass
class FormatSolution:
    """Result of one configuration's reconciliation pass."""

    option_states: dict[str, bool] = field(default_factory=dict)
    streams: dict[str, SolvedStream] = field(default_factory=dict)
    #: X504 sites, in discovery order — input to auto_insert_converters
    conversions: list[ConversionSite] = field(default_factory=list)


@dataclass
class _Endpoint:
    instance_id: str
    definition_id: str
    port: str
    is_writer: bool
    term: Term | None  # None = undeclared (inference)
    line: int | None
    slice: tuple[int, int] | None


def _effective_decl(program, inst, port) -> tuple[FormatDecl | None, bool]:
    """(declaration, is_override) for one endpoint.

    A per-binding override replaces the class declaration entirely.
    Raises :class:`FormatError` on an unparsable override (the validator
    only checks overrides without ``${}`` placeholders).
    """
    override = inst.port_formats.get(port)
    if override is not None:
        return parse_format(override), True
    spec = program.registry.get(inst.class_name)
    decl = getattr(spec, "formats", {}).get(port) if spec is not None else None
    if decl is None:
        return None, False
    return parse_format(decl), False


def _gather(bag: DiagnosticBag, program, pg, context: str) -> list[_Endpoint] | None:
    """Instantiate every active endpoint's format term."""
    out: list[_Endpoint] = []
    for table in pg.streams.values():
        for endpoint, is_writer in [(w, True) for w in table.writers] + [
            (r, False) for r in table.readers
        ]:
            inst = program.components[endpoint.instance_id]
            line = inst.port_lines.get(endpoint.port) or inst.line
            try:
                decl, _ = _effective_decl(program, inst, endpoint.port)
            except FormatError as exc:
                bag.report(
                    "X119",
                    f"component {inst.definition_id!r}, port "
                    f"{endpoint.port!r}: {exc}",
                    line=line,
                    where=inst.definition_id,
                )
                decl = None
            term: Term | None = None
            if decl is None:
                bag.report(
                    "X505",
                    f"port {endpoint.port!r} of {inst.definition_id!r} has no "
                    f"format declaration; stream {table.name!r} falls back to "
                    "first-write inference",
                    line=line,
                    where=inst.definition_id,
                )
            else:
                try:
                    term = decl.instantiate(inst.params, inst.definition_id)
                except FormatError as exc:
                    bag.report(
                        "X502",
                        f"port {endpoint.port!r} of {inst.definition_id!r}: "
                        f"{exc}{context}",
                        line=line,
                        where=inst.definition_id,
                    )
            out.append(
                _Endpoint(
                    instance_id=endpoint.instance_id,
                    definition_id=inst.definition_id,
                    port=endpoint.port,
                    is_writer=is_writer,
                    term=term,
                    line=line,
                    slice=inst.slice,
                )
            )
    return out


def _is_convertible(a: str, b: str) -> bool:
    """True when a plane-to-plane dtype mismatch has a numeric bridge."""
    try:
        return (
            np.issubdtype(np.dtype(a), np.number)
            and np.issubdtype(np.dtype(b), np.number)
        )
    except TypeError:
        return False


def solve_formats_or_raise(program, pg) -> FormatSolution:
    """:func:`check_formats`, but reconciliation *errors* abort the build.

    The runtimes call this when installing a configuration: a spec whose
    declared formats cannot be reconciled (X501/X502/X503) must fail when
    the graph is built — never run on silent first-write inference, where
    a sink declaring one geometry happily consumes another.  Warnings and
    infos (X504/X505/X506) pass through untouched; they are lint's
    business, not the runtime's.
    """
    from repro.analysis.diagnostics import Severity
    from repro.errors import StreamFormatError

    bag = DiagnosticBag()
    solution = check_formats(bag, program, pg)
    if bag.has_errors:
        errors = [d for d in bag.sorted() if d.severity is Severity.ERROR]
        detail = "; ".join(f"{d.code}: {d.message}" for d in errors)
        raise StreamFormatError(
            f"declared port formats do not reconcile "
            f"({len(errors)} error(s)): {detail}"
        )
    return solution


def check_formats(
    bag: DiagnosticBag, program, pg, *, context: str = ""
) -> FormatSolution:
    """Reconcile port formats across one configuration's streams.

    Reports X119/X501–X505 into ``bag`` and returns the solved per-stream
    format table.  Endpoints without declarations contribute no
    constraints (inference), so removing a declaration can only *lose*
    precision, never create an error.
    """
    solution = FormatSolution(option_states=dict(pg.option_states))
    endpoints = _gather(bag, program, pg, context)
    by_stream: dict[str, list[_Endpoint]] = {}
    index = 0
    for table in pg.streams.values():
        n = len(table.writers) + len(table.readers)
        by_stream[table.name] = endpoints[index : index + n]
        index += n

    unifier = Unifier()
    # representative (owner) entries per stream, for resolution + messages
    reps: dict[str, dict] = {}

    def conflict_diag(
        stream: str, ep: _Endpoint, owner: _Endpoint, c: UnifyConflict
    ) -> None:
        sol = solution.streams[stream]
        if c.prop == "dtype" and not c.symbolic and _is_convertible(c.ours, c.theirs):
            lossy = not np.can_cast(np.dtype(c.ours), np.dtype(c.theirs),
                                    casting="safe")
            bag.report(
                "X504",
                f"stream {stream!r}: dtype mismatch between "
                f"{owner.definition_id}.{owner.port} ({c.ours}) and "
                f"{ep.definition_id}.{ep.port} ({c.theirs}); "
                f"{'lossy but ' if lossy else ''}auto-convertible — insert a "
                f"{CONVERTER_COMPONENT!r} component{context}",
                line=ep.line,
                where=ep.definition_id,
            )
            # Bridgeable direction (writer's dtype flows to a mismatched
            # reader) with the converter available: the runtimes insert
            # the bridge at build time, so note it rather than leave the
            # X504 as homework.
            if (
                owner.is_writer
                and not ep.is_writer
                and CONVERTER_COMPONENT in program.registry
            ):
                solution.conversions.append(
                    ConversionSite(
                        stream=stream,
                        reader=ep.instance_id,
                        port=ep.port,
                        src_dtype=c.ours,
                        dst_dtype=c.theirs,
                    )
                )
                bag.report(
                    "X506",
                    f"stream {stream!r}: a {CONVERTER_COMPONENT!r} "
                    f"({c.ours} -> {c.theirs}) is auto-inserted before "
                    f"{ep.definition_id}.{ep.port} at build time; chain "
                    "fusion (--fuse) absorbs the inserted converter"
                    f"{context}",
                    line=ep.line,
                    where=ep.definition_id,
                )
            return
        sol.conflicted = True
        code = "X502" if c.symbolic else "X501"
        what = {
            "rank": "shape rank",
            "shape": "dimension",
        }.get(c.prop, c.prop)
        bag.report(
            code,
            f"stream {stream!r}: {what} mismatch between "
            f"{owner.definition_id}.{owner.port} ({c.ours}) and "
            f"{ep.definition_id}.{ep.port} ({c.theirs}){context}",
            line=ep.line,
            where=ep.definition_id,
        )

    for stream, eps in by_stream.items():
        sol = solution.streams.setdefault(stream, SolvedStream())
        rep: dict = {"kind": None, "dtype": None, "colorspace": None,
                     "dims": None, "owner": {}}
        reps[stream] = rep
        for ep in eps:
            if ep.term is None:
                sol.fully_declared = False
                continue
            sol.declared = True
            t = ep.term
            # kind --------------------------------------------------------
            if t.kind is not None:
                if rep["kind"] is None:
                    rep["kind"] = t.kind
                    rep["owner"]["kind"] = ep
                elif rep["kind"] != t.kind:
                    conflict_diag(
                        stream, ep, rep["owner"]["kind"],
                        UnifyConflict("kind", rep["kind"], t.kind),
                    )
            # dtype / colorspace -----------------------------------------
            for prop in ("dtype", "colorspace"):
                entry = getattr(t, prop)
                if entry is None:
                    continue
                if rep[prop] is None:
                    rep[prop] = entry
                    rep["owner"][prop] = ep
                    # still thread variables through the unifier so a
                    # component-scoped var links its other ports
                    if entry[0] == "var":
                        unifier.unify_tag(prop, entry, entry)
                    continue
                c = unifier.unify_tag(prop, rep[prop], entry)
                if c is not None:
                    conflict_diag(stream, ep, rep["owner"][prop], c)
                elif rep[prop][0] == "var" and entry[0] == "val":
                    rep[prop] = entry
            # dims --------------------------------------------------------
            if t.dims is not None:
                if rep["dims"] is None:
                    rep["dims"] = list(t.dims)
                    rep["owner"]["dims"] = ep
                    continue
                if len(rep["dims"]) != len(t.dims):
                    conflict_diag(
                        stream, ep, rep["owner"]["dims"],
                        UnifyConflict(
                            "rank", str(len(rep["dims"])), str(len(t.dims))
                        ),
                    )
                    continue
                for i, entry in enumerate(t.dims):
                    c = unifier.unify_dim(rep["dims"][i], entry)
                    if c is not None:
                        conflict_diag(stream, ep, rep["owner"]["dims"], c)
                    elif rep["dims"][i][0] == "any":
                        rep["dims"][i] = entry

    # resolve solved values ----------------------------------------------
    for stream, rep in reps.items():
        sol = solution.streams[stream]
        sol.kind = rep["kind"] or ("plane" if rep["dims"] or rep["dtype"] else None)
        sol.dtype = unifier.resolve_tag(rep["dtype"])
        sol.colorspace = unifier.resolve_tag(rep["colorspace"])
        if rep["dims"] is not None:
            sol.shape = tuple(unifier.resolve_dim(d) for d in rep["dims"])

    # X503: sliced writers must carve their solved height by their block --
    for eps in by_stream.values():
        for ep in eps:
            t = ep.term
            if (
                t is None
                or not ep.is_writer
                or ep.slice is None
                or t.block is None
                or t.dims is None
                or not t.dims
            ):
                continue
            height = unifier.resolve_dim(t.dims[0])
            if height is not None and height % t.block != 0:
                bag.report(
                    "X503",
                    f"sliced writer {ep.definition_id!r} port {ep.port!r}: "
                    f"height {height} is not divisible by its declared "
                    f"block of {t.block} rows ({ep.slice[1]} slices)",
                    line=ep.line,
                    where=ep.definition_id,
                )
    return solution


def _expectations_from(
    solution: FormatSolution,
) -> dict[str, tuple[tuple[int, ...], str]]:
    out: dict[str, tuple[tuple[int, ...], str]] = {}
    for name, sol in solution.streams.items():
        if (
            sol.conflicted
            or not sol.fully_declared
            or sol.kind != "plane"
            or sol.dtype is None
            or sol.shape is None
            or any(d is None for d in sol.shape)
        ):
            continue
        out[name] = (tuple(int(d) for d in sol.shape), sol.dtype)  # type: ignore[misc]
    return out


def runtime_expectations(
    program, pg, *, solution: FormatSolution | None = None
) -> dict[str, tuple[tuple[int, ...], str]]:
    """Solved plane expectations for the runtimes' ``ensure_buffer``.

    Returns ``{stream name: (shape, dtype name)}`` for every stream whose
    reconciled format is a fully-concrete, conflict-free pixel plane with
    *every* endpoint declared.  Streams that carry objects
    (bitstream/coeffs/scalar), have open dimensions, touch an undeclared
    port, or failed reconciliation are left to first-write inference,
    exactly like before this pass existed.
    """
    if solution is None:
        bag = DiagnosticBag()  # discarded: lint is where diagnostics surface
        solution = check_formats(bag, program, pg)
    return _expectations_from(solution)


def auto_insert_converters(
    program,
    pg,
    registry,
    expectations: dict[str, tuple[tuple[int, ...], str]],
    solution: FormatSolution | None = None,
):
    """Insert ``convert_plane`` bridges at every X506 site of this build.

    Rewrites ``pg`` (graph, stream tables, active set) so each recorded
    :class:`ConversionSite` reader consumes a derived stream
    ``<stream>.as_<dtype>`` fed by an auto-inserted unsliced converter.
    The rewrite is deterministic in ``pg`` — the process backend's
    dispatcher and every worker run it independently and must agree on
    ids.  Returns ``(pg, overrides, expectations)`` where ``overrides``
    maps instance ids to the converter instances *and* the rebound reader
    instances (``Program.components`` is never mutated; component hosts
    consult the overrides first).
    """
    from dataclasses import replace as _replace

    from repro.core.program import ComponentInstance, ProgramGraph, StreamEndpoint, StreamTable

    if solution is None:
        bag = DiagnosticBag()
        solution = check_formats(bag, program, pg)
    sites = [
        s
        for s in solution.conversions
        if s.stream in pg.streams
        and any(r.instance_id == s.reader and r.port == s.port
                for r in pg.streams[s.stream].readers)
    ]
    if not sites or CONVERTER_COMPONENT not in registry:
        return pg, {}, expectations

    overrides: dict[str, ComponentInstance] = {}
    streams = {name: StreamTable(t.name, list(t.writers), list(t.readers))
               for name, t in pg.streams.items()}
    expectations = dict(expectations)
    graph = pg.graph
    # (stream, dst dtype) -> converter instance; readers wanting the same
    # conversion share one bridge
    converters: dict[tuple[str, str], ComponentInstance] = {}

    def reader_instance(instance_id: str) -> ComponentInstance:
        got = overrides.get(instance_id)
        if got is not None:
            return got
        return program.components[instance_id]

    for site in sites:
        key = (site.stream, site.dst_dtype)
        derived = f"{site.stream}.as_{site.dst_dtype}"
        conv = converters.get(key)
        if conv is None:
            reader = reader_instance(site.reader)
            conv = ComponentInstance(
                instance_id=f"{derived}.convert",
                definition_id=f"{derived}.convert",
                class_name=CONVERTER_COMPONENT,
                params={"dtype": site.dst_dtype},
                streams={"input": site.stream, "output": derived},
                slice=None,
                manager=reader.manager,
                options=reader.options,
            )
            converters[key] = conv
            overrides[conv.instance_id] = conv
            streams[site.stream].readers.append(
                StreamEndpoint(conv.instance_id, "input")
            )
            streams[derived] = StreamTable(
                derived, [StreamEndpoint(conv.instance_id, "output")], []
            )
            src_expect = expectations.get(site.stream)
            if src_expect is not None:
                expectations[derived] = (src_expect[0], site.dst_dtype)
        # rebind the reader port to the derived stream
        reader = reader_instance(site.reader)
        new_reader = _replace(
            reader, streams={**reader.streams, site.port: derived}
        )
        overrides[site.reader] = new_reader
        table = streams[site.stream]
        table.readers = [
            r
            for r in table.readers
            if not (r.instance_id == site.reader and r.port == site.port)
        ]
        streams[derived].readers.append(StreamEndpoint(site.reader, site.port))

    # Rebuild the graph: same nodes with rebound reader payloads, plus one
    # node per converter; original edges are kept wholesale (the old
    # writer->reader ordering is implied by writer->conv->reader anyway).
    from repro.graph.taskgraph import TaskGraph

    new_graph = TaskGraph()
    for node in graph:
        payload = node.payload
        if (
            isinstance(payload, ComponentInstance)
            and payload.instance_id in overrides
        ):
            payload = overrides[payload.instance_id]
        new_graph.add_node(
            node.node_id,
            label=node.label,
            kind=node.kind,
            payload=payload,
            weight=node.weight,
        )
    for conv in converters.values():
        new_graph.add_node(
            conv.instance_id,
            label=conv.instance_id,
            kind="task",
            payload=conv,
            weight=1,
        )
    for u, v in graph.edges():
        new_graph.add_edge(u, v)
    for (stream, _dst), conv in converters.items():
        for w in streams[stream].writers:
            if w.instance_id in new_graph:
                new_graph.add_edge(w.instance_id, conv.instance_id)
        for r in streams[conv.streams["output"]].readers:
            if r.instance_id in new_graph:
                new_graph.add_edge(conv.instance_id, r.instance_id)

    new_pg = ProgramGraph(
        graph=new_graph,
        streams=streams,
        aliases=pg.aliases,
        option_states=pg.option_states,
        active_components=pg.active_components
        + tuple(c.instance_id for c in converters.values()),
        crossdep_nodes=pg.crossdep_nodes,
    )
    return new_pg, overrides, expectations
