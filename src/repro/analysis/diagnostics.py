"""Diagnostic framework for whole-program XSPCL static analysis.

The paper's XSPCL tool *validates* a specification and stops at the first
error.  ``xspcl lint`` goes further: it runs a battery of analysis passes
over the AST and the expanded program and reports **every** finding in one
run, each tagged with

* a stable **code** (``X1xx`` validation, ``X2xx`` liveness/dead-flow,
  ``X3xx`` concurrency/safety, ``X4xx`` performance lint, ``X5xx``
  interface/format reconciliation),
* a **severity** (info < warning < error),
* and, where the spec came from XML, the **source line** of the
  offending element.

This module is deliberately standalone (no imports from :mod:`repro.core`)
so the validator can be built on top of it without import cycles.  The
catalogue of codes lives in :data:`CODES`; ``docs/lint.md`` documents each
code with a minimal triggering example and is kept in sync by
``tests/analysis/test_codes_documented.py``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

__all__ = [
    "Severity",
    "CodeInfo",
    "CODES",
    "Diagnostic",
    "DiagnosticBag",
    "render_text",
    "render_json",
]


class Severity(enum.IntEnum):
    """Ordered severity levels; comparisons follow the integer order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {name!r}") from None

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class CodeInfo:
    """Catalogue entry for one diagnostic code."""

    code: str
    severity: Severity
    family: str  # validation | liveness | concurrency | performance | formats
    title: str


def _catalogue(*entries: tuple[str, Severity, str, str]) -> dict[str, CodeInfo]:
    out: dict[str, CodeInfo] = {}
    for code, severity, family, title in entries:
        if code in out:
            raise ValueError(f"duplicate diagnostic code {code}")
        out[code] = CodeInfo(code, severity, family, title)
    return out


_E, _W, _I = Severity.ERROR, Severity.WARNING, Severity.INFO

#: Every diagnostic code the toolchain can emit.  Codes are stable: once
#: shipped they are never renumbered, only retired.
CODES: dict[str, CodeInfo] = _catalogue(
    # -- X0xx: front-end --------------------------------------------------
    ("X001", _E, "validation", "malformed XML / parse error"),
    # -- X1xx: semantic validation (the paper's XSPCL checks) -------------
    ("X101", _E, "validation", "no procedure named 'main'"),
    ("X102", _E, "validation", "'main' declares formal parameters"),
    ("X103", _E, "validation", "call targets an unknown procedure"),
    ("X104", _E, "validation", "recursive procedure calls"),
    ("X105", _E, "validation", "call stream arguments mismatch the callee"),
    ("X106", _E, "validation", "call init-parameter arguments mismatch"),
    ("X107", _E, "validation", "duplicate instance name in a procedure"),
    ("X108", _E, "validation", "bad ${...} placeholder"),
    ("X109", _E, "validation", "option not contained in any manager"),
    ("X110", _E, "validation", "duplicate option name in a manager"),
    ("X111", _E, "validation", "handler references an unknown option"),
    ("X112", _E, "validation", "invalid parallel replication count n"),
    ("X113", _E, "validation", "empty <parblock>"),
    ("X114", _E, "validation", "unknown component class"),
    ("X115", _E, "validation", "stream bindings mismatch the class ports"),
    ("X116", _E, "validation", "init params violate the class schema"),
    ("X117", _E, "validation", "param default must be a literal"),
    ("X118", _E, "validation", "expansion failed"),
    ("X119", _E, "validation", "malformed port format declaration"),
    # -- X2xx: liveness / dead flow ---------------------------------------
    ("X201", _W, "liveness", "procedure unreachable from 'main'"),
    ("X202", _W, "liveness", "unused stream formal"),
    ("X203", _W, "liveness", "unused init-parameter formal"),
    ("X204", _W, "liveness", "stream is written but never read"),
    ("X205", _E, "liveness", "stream is read but never written"),
    ("X206", _W, "liveness", "option no handler can toggle"),
    # -- X3xx: concurrency / reconfiguration safety -----------------------
    ("X301", _E, "concurrency", "cyclic stream dependencies (pipeline deadlock)"),
    ("X302", _E, "concurrency", "stream has multiple logical writers"),
    ("X303", _E, "concurrency", "stream reader not ordered after its writer"),
    ("X304", _W, "concurrency", "non-series-parallel region (prediction accuracy)"),
    ("X305", _W, "concurrency", "manager queue has no sender"),
    ("X306", _W, "concurrency", "forwarded event targets a queue no manager polls"),
    ("X307", _E, "concurrency", "reconfigured option state fails to splice"),
    # -- X4xx: performance lint -------------------------------------------
    ("X401", _I, "performance", "linear chain eligible for grouping fusion"),
    ("X402", _W, "performance", "slice count does not divide the frame height"),
    ("X403", _I, "performance", "component class has no cost profile"),
    ("X404", _W, "performance", "slice replication exceeds the machine node count"),
    ("X405", _W, "performance", "forward handlers cycle an event between queues"),
    # -- X5xx: interface reconciliation (format solving) -------------------
    ("X501", _E, "formats", "producer/consumer format mismatch"),
    ("X502", _E, "formats", "unsolvable symbolic dimension"),
    ("X503", _E, "formats", "slice block does not divide a declared dimension"),
    ("X504", _W, "formats", "lossy format mismatch, auto-convertible"),
    ("X505", _I, "formats", "undeclared port format, falling back to inference"),
    ("X506", _I, "formats", "convert_plane auto-inserted at an X504 site"),
)

FAMILIES: tuple[str, ...] = (
    "validation", "liveness", "concurrency", "performance", "formats",
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a message, and a source location."""

    code: str
    severity: Severity
    message: str
    line: int | None = None
    where: str | None = None  # e.g. "procedure 'main'" or an instance id
    path: str | None = None  # source file, filled in by the CLI

    @property
    def family(self) -> str:
        return CODES[self.code].family

    def format(self) -> str:
        loc = self.path or "<spec>"
        if self.line is not None:
            loc += f":{self.line}"
        ctx = f" ({self.where})" if self.where else ""
        return f"{loc}: {self.severity}: [{self.code}] {self.message}{ctx}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "family": self.family,
            "message": self.message,
            "line": self.line,
            "where": self.where,
            "path": self.path,
        }


@dataclass
class DiagnosticBag:
    """Collect-all-don't-stop container used by the validator and passes."""

    items: list[Diagnostic] = field(default_factory=list)

    def report(
        self,
        code: str,
        message: str,
        *,
        line: int | None = None,
        where: str | None = None,
        severity: Severity | None = None,
    ) -> Diagnostic:
        info = CODES.get(code)
        if info is None:
            raise KeyError(f"unknown diagnostic code {code!r}")
        diag = Diagnostic(
            code=code,
            severity=severity if severity is not None else info.severity,
            message=message,
            line=line,
            where=where,
        )
        self.items.append(diag)
        return diag

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.items.extend(diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.items if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.items if d.severity == Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self.items)

    def at_or_above(self, threshold: Severity) -> list[Diagnostic]:
        return [d for d in self.items if d.severity >= threshold]

    def sorted(self) -> list[Diagnostic]:
        """Deduplicated, ordered by (path, line, code, message)."""
        seen: set[tuple] = set()
        unique: list[Diagnostic] = []
        for d in self.items:
            key = (d.code, d.line, d.where, d.message)
            if key not in seen:
                seen.add(key)
                unique.append(d)
        return sort_diagnostics(unique)


def sort_diagnostics(diags: list[Diagnostic]) -> list[Diagnostic]:
    return sorted(
        diags,
        key=lambda d: (
            d.path or "",
            d.line if d.line is not None else 1 << 30,
            d.code,
            d.message,
        ),
    )


def render_text(diagnostics: list[Diagnostic]) -> str:
    """Human-readable report, one line per diagnostic plus a summary."""
    lines = [d.format() for d in diagnostics]
    n_err = sum(1 for d in diagnostics if d.severity >= Severity.ERROR)
    n_warn = sum(1 for d in diagnostics if d.severity == Severity.WARNING)
    n_info = len(diagnostics) - n_err - n_warn
    lines.append(
        f"{n_err} error(s), {n_warn} warning(s), {n_info} info"
        if diagnostics
        else "clean: no diagnostics"
    )
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic], *, formats: object = None) -> str:
    """Machine-readable report (stable schema, used by --format json).

    ``formats``, when given (``--show-formats``), is appended verbatim as
    a ``"formats"`` key: the per-configuration solved format tables.
    """
    payload: dict = {
        "diagnostics": [d.to_dict() for d in diagnostics],
        "summary": {
            "errors": sum(1 for d in diagnostics if d.severity >= Severity.ERROR),
            "warnings": sum(
                1 for d in diagnostics if d.severity == Severity.WARNING
            ),
            "infos": sum(1 for d in diagnostics if d.severity == Severity.INFO),
            "total": len(diagnostics),
        },
    }
    if formats is not None:
        payload["formats"] = formats
    return json.dumps(payload, indent=2)
