"""Performance lint passes (codes ``X4xx``).

These never indicate a broken program — they point at cycles left on the
table: producer/consumer chains the scheduler could fuse for cache reuse
(X401, the ``hinch.grouping`` optimization of paper §4.1), slice counts
that split frames unevenly and unbalance the data-parallel copies (X402),
component classes the SpaceCAKE cost model can only price with its flat
fallback constant (X403), which degrades prediction fidelity, and slice
replication wider than the target machine (X404) — excess copies can
never run concurrently, they only add per-job scheduling overhead.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.diagnostics import DiagnosticBag
from repro.core.program import Program, ProgramGraph
from repro.hinch.grouping import find_linear_chains

__all__ = [
    "check_fusable_chains",
    "check_slice_divisibility",
    "check_cost_profiles",
    "check_over_slicing",
    "run_perf_passes",
]


def check_fusable_chains(
    bag: DiagnosticBag, program: Program, pg: ProgramGraph
) -> None:
    """X401: maximal linear component chains groupable into one job."""
    for chain in find_linear_chains(pg.graph, pg.crossdep_nodes):
        first = program.components.get(chain[0])
        bag.report(
            "X401",
            "linear chain " + " -> ".join(chain) + " can be fused into one "
            "scheduled job (run with group_chains=True / hinch.grouping) to "
            "keep the intermediate stream in cache",
            line=first.line if first is not None else None,
            where=chain[0],
        )


def check_slice_divisibility(bag: DiagnosticBag, program: Program) -> None:
    """X402: slice replication counts that do not divide the frame height.

    Each slice copy processes ``height / n`` rows; a remainder means the
    last copy gets a larger region and becomes the straggler every
    iteration — the region assignment interface (paper §3.3) balances
    only when ``n`` divides the height.
    """
    seen: set[str] = set()
    for inst in program.components.values():
        if inst.slice is None or inst.definition_id in seen:
            continue
        seen.add(inst.definition_id)
        _, n = inst.slice
        height = inst.params.get("height")
        if n > 1 and isinstance(height, int) and height % n != 0:
            bag.report(
                "X402",
                f"component {inst.definition_id!r} is sliced {n} ways but its "
                f"frame height {height} is not divisible by {n}; the uneven "
                "remainder rows make the last copy the per-iteration "
                "straggler",
                line=inst.line,
                where=inst.definition_id,
            )


def check_cost_profiles(
    bag: DiagnosticBag,
    program: Program,
    class_registry: Mapping[str, type] | None,
) -> None:
    """X403: classes the cost model prices with ``default_job_cycles``."""
    if class_registry is None:
        return
    reported: set[str] = set()
    for inst in program.components.values():
        if inst.class_name in reported:
            continue
        cls = class_registry.get(inst.class_name)
        if cls is not None and getattr(cls, "cost_profile", None) is None:
            reported.add(inst.class_name)
            bag.report(
                "X403",
                f"component class {inst.class_name!r} publishes no "
                "cost_profile; simulation and prediction fall back to the "
                "flat default_job_cycles constant (spacecake.costmodel)",
                line=inst.line,
                where=inst.instance_id,
            )


def check_over_slicing(
    bag: DiagnosticBag, program: Program, machine_nodes: int | None
) -> None:
    """X404: data-parallel replication wider than the target machine.

    The scheduler admits at most ``machine_nodes`` jobs concurrently, so
    slicing a region into more copies than there are nodes cannot buy
    additional parallelism — each extra copy only adds a job's worth of
    dispatch, stream accounting, and (on the process backend) transport
    overhead per iteration.  ``machine_nodes`` comes from the deployment
    (``xspcl lint --nodes N``); without it the pass is skipped.
    """
    if machine_nodes is None or machine_nodes < 1:
        return
    seen: set[str] = set()
    for inst in program.components.values():
        if inst.slice is None or inst.definition_id in seen:
            continue
        seen.add(inst.definition_id)
        _, n = inst.slice
        if n > machine_nodes:
            bag.report(
                "X404",
                f"component {inst.definition_id!r} is replicated into {n} "
                f"slice copies but the target machine has only "
                f"{machine_nodes} node(s); the {n - machine_nodes} excess "
                "cop" + ("y" if n - machine_nodes == 1 else "ies")
                + " can never run concurrently and only add per-iteration "
                "scheduling overhead",
                line=inst.line,
                where=inst.definition_id,
            )


def run_perf_passes(
    bag: DiagnosticBag,
    program: Program,
    pg: ProgramGraph,
    class_registry: Mapping[str, type] | None = None,
    machine_nodes: int | None = None,
) -> None:
    check_fusable_chains(bag, program, pg)
    check_slice_divisibility(bag, program)
    check_cost_profiles(bag, program, class_registry)
    check_over_slicing(bag, program, machine_nodes)
