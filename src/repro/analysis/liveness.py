"""Liveness / dead-flow analysis passes (codes ``X2xx``).

AST-level passes find declarations nothing uses: procedures unreachable
from ``main`` (X201), stream/param formals a procedure never references
(X202/X203), and options no manager handler can ever toggle (X206).
Program-level passes work on the expanded stream tables: streams that are
produced but never consumed in any examined configuration (X204) and
streams read without an active writer (X205, surfaced by the engine from
:func:`repro.core.program.stream_problems`).
"""

from __future__ import annotations

import re

from repro.analysis.diagnostics import DiagnosticBag, Severity
from repro.core.ast import (
    CallNode,
    ComponentNode,
    ManagerNode,
    OptionNode,
    ParallelNode,
    Procedure,
    Spec,
    walk_body,
)

__all__ = [
    "check_unreachable_procedures",
    "check_unused_formals",
    "check_dead_options",
    "run_ast_passes",
]

_PLACEHOLDER = re.compile(r"\$\{([^}]*)\}")


def _referenced_names(proc: Procedure) -> set[str]:
    """Every ``${name}`` placeholder appearing anywhere in a procedure body."""
    names: set[str] = set()

    def scan(value: object) -> None:
        if isinstance(value, str):
            names.update(_PLACEHOLDER.findall(value))

    for node in walk_body(proc.body):
        if isinstance(node, ComponentNode):
            for ref in node.streams.values():
                scan(ref)
            for value in node.params.values():
                scan(value)
            scan(node.reconfigure)
        elif isinstance(node, CallNode):
            for ref in node.streams.values():
                scan(ref)
            for value in node.params.values():
                scan(value)
        elif isinstance(node, ParallelNode):
            scan(node.n)
        elif isinstance(node, ManagerNode):
            scan(node.queue)
            for handler in node.handlers:
                scan(handler.target)
                scan(handler.request)
        elif isinstance(node, OptionNode):
            for bp in node.bypasses:
                scan(bp.src)
                scan(bp.dst)
    return names


def check_unreachable_procedures(bag: DiagnosticBag, spec: Spec) -> None:
    """X201: procedures never (transitively) called from ``main``."""
    if "main" not in spec.procedures:
        return  # X101 already reported; reachability is meaningless
    reachable: set[str] = set()
    stack = ["main"]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        proc = spec.procedures.get(name)
        if proc is None:
            continue
        for node in walk_body(proc.body):
            if isinstance(node, CallNode):
                stack.append(node.procedure)
    for name, proc in spec.procedures.items():
        if name not in reachable:
            bag.report(
                "X201",
                f"procedure {name!r} is never called from 'main'; "
                "it contributes no components to the application",
                line=proc.line,
                where=f"procedure {name!r}",
            )


def check_unused_formals(bag: DiagnosticBag, spec: Spec) -> None:
    """X202/X203: formals that no placeholder in the body ever references."""
    for proc in spec.procedures.values():
        used = _referenced_names(proc)
        for formal in proc.stream_formals:
            if formal.name not in used:
                bag.report(
                    "X202",
                    f"stream formal {formal.name!r} of procedure "
                    f"{proc.name!r} is never referenced in its body",
                    line=proc.line,
                    where=f"procedure {proc.name!r}",
                )
        for formal in proc.param_formals:
            if formal.name not in used:
                bag.report(
                    "X203",
                    f"param formal {formal.name!r} of procedure "
                    f"{proc.name!r} is never referenced in its body",
                    line=proc.line,
                    where=f"procedure {proc.name!r}",
                )


def check_dead_options(bag: DiagnosticBag, spec: Spec) -> None:
    """X206: options no enable/disable/toggle handler ever targets.

    A default-disabled untoggleable option is dead weight (its subgraph
    can never run) — warning.  A default-enabled untoggleable option still
    runs but the option wrapper is pointless — info.
    """
    def owned_options(body):
        """Options of one manager: any depth, not crossing nested managers."""
        for n in body:
            if isinstance(n, OptionNode):
                yield n
                yield from owned_options(n.body)
            elif isinstance(n, ParallelNode):
                for pb in n.parblocks:
                    yield from owned_options(pb)

    for proc in spec.procedures.values():
        for node in walk_body(proc.body):
            if not isinstance(node, ManagerNode):
                continue
            toggleable = {
                h.option
                for h in node.handlers
                if h.action in ("enable", "disable", "toggle")
            }
            for inner in owned_options(node.body):
                if inner.name not in toggleable:
                    if inner.enabled:
                        bag.report(
                            "X206",
                            f"option {inner.name!r} is permanently enabled: no "
                            f"handler of manager {node.name!r} can toggle it",
                            line=inner.line,
                            where=f"manager {node.name!r}",
                            severity=Severity.INFO,
                        )
                    else:
                        bag.report(
                            "X206",
                            f"option {inner.name!r} starts disabled and no "
                            f"handler of manager {node.name!r} can enable it; "
                            "its components can never run",
                            line=inner.line,
                            where=f"manager {node.name!r}",
                        )


def check_dead_streams(
    bag: DiagnosticBag,
    tables_per_config: list[dict],
    lines: dict[str, int | None],
) -> None:
    """X204: streams with writers but no readers in *every* configuration.

    ``tables_per_config`` holds the ``ProgramGraph.streams`` dict of each
    examined configuration (post-bypass-aliasing); a stream that finds a
    reader in at least one configuration is considered live.  ``lines``
    maps component instance ids to source lines for attribution.
    """
    written: dict[str, tuple[str, ...]] = {}
    read: set[str] = set()
    for tables in tables_per_config:
        for name, table in tables.items():
            if table.writers:
                written.setdefault(
                    name, tuple(w.instance_id for w in table.writers)
                )
            if table.readers:
                read.add(name)
    for name, writers in sorted(written.items()):
        if name not in read:
            writer_id = writers[0]
            bag.report(
                "X204",
                f"stream {name!r} is written by {sorted(set(writers))} but "
                "never read in any configuration; the work producing it is "
                "wasted",
                line=lines.get(writer_id),
                where=writer_id,
            )


def run_ast_passes(bag: DiagnosticBag, spec: Spec) -> None:
    """All AST-level liveness passes (program-level ones run in the engine)."""
    check_unreachable_procedures(bag, spec)
    check_unused_formals(bag, spec)
    check_dead_options(bag, spec)
