"""The lint pass driver: parse -> validate -> expand -> analyze.

:func:`lint_spec` runs every analysis family over one specification and
returns the deduplicated, source-ordered diagnostic list:

1. **validation** (X1xx) — the collect-all refactor of the paper's XSPCL
   checks (:func:`repro.core.validator.collect_diagnostics`);
2. **liveness** (X2xx) — AST dead-flow passes, plus dead-stream detection
   over the stream tables of every *reachable* configuration;
3. **concurrency/safety** (X3xx) — per-configuration deadlock, stream
   sanity, SP-ness, splice checks, and event-queue plumbing;
4. **performance** (X4xx) — fusion, slicing, and cost-model lint on the
   default configuration.

Reconfiguration safety is checked against the configurations the manager
handlers can actually *reach*: starting from the per-option defaults,
every manager event is applied (its enable/disable/toggle handlers fire
atomically, in declaration order) until the state set closes — so a
two-option toggle pair like Blur-3/5 is checked as ``(on,off)`` and
``(off,on)``, never the unreachable ``(off,off)``.  Each reachable
configuration must splice into a buildable graph (X307 otherwise).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.analysis import concurrency, formats, liveness, perf
from repro.analysis.diagnostics import Diagnostic, DiagnosticBag
from repro.core.ast import ParallelNode, Spec, walk_body
from repro.core.expander import expand
from repro.core.parser import parse_string
from repro.core.validator import collect_diagnostics
from repro.core.ports import PortSpec
from repro.errors import ParseError, ReproError

__all__ = [
    "lint_spec",
    "lint_string",
    "lint_file",
    "reachable_configurations",
    "solve_formats",
]

#: Safety valve: stop enumerating configurations beyond this many states.
MAX_CONFIGURATIONS = 64


def reachable_configurations(program, cap: int = MAX_CONFIGURATIONS):
    """Option-state assignments reachable from the defaults via events.

    Returns a list of ``dict[option_qname, bool]``; the first entry is
    always the default configuration.  Exploration is breadth-first over
    manager events and capped at ``cap`` states.
    """
    default = program.default_option_states()
    start = tuple(sorted(default.items()))
    seen = {start}
    order = [start]
    queue = [start]
    while queue and len(seen) < cap:
        state = dict(queue.pop(0))
        for mgr in program.managers.values():
            events = sorted({h.event for h in mgr.handlers})
            for event in events:
                nxt = dict(state)
                for handler in mgr.handlers_for(event):
                    if handler.option is None:
                        continue
                    if handler.action == "enable":
                        nxt[handler.option] = True
                    elif handler.action == "disable":
                        nxt[handler.option] = False
                    elif handler.action == "toggle":
                        nxt[handler.option] = not nxt[handler.option]
                key = tuple(sorted(nxt.items()))
                if key not in seen and len(seen) < cap:
                    seen.add(key)
                    order.append(key)
                    queue.append(key)
    return [dict(key) for key in order]


def _config_context(states: Mapping[str, bool], default: Mapping[str, bool]) -> str:
    diff = {k: v for k, v in states.items() if default.get(k) != v}
    if not diff:
        return ""
    flips = ", ".join(
        f"{name}={'on' if on else 'off'}" for name, on in sorted(diff.items())
    )
    return f" [configuration: {flips}]"


def solve_formats(program) -> list:
    """Solved per-stream formats for every reachable configuration.

    Returns a list of :class:`repro.analysis.formats.FormatSolution`, one
    per reachable option configuration (first is the default), skipping
    configurations whose graphs fail to splice.  Diagnostics are
    discarded — use :func:`lint_spec` for those.
    """
    solutions = []
    for states in reachable_configurations(program):
        try:
            pg = program.build_graph(states, check=False)
        except ReproError:
            continue
        bag = DiagnosticBag()
        solutions.append(formats.check_formats(bag, program, pg))
    return solutions


def _crossdep_lines(spec: Spec) -> tuple[int | None, ...]:
    lines: list[int | None] = []
    for proc in spec.procedures.values():
        for node in walk_body(proc.body):
            if isinstance(node, ParallelNode) and node.shape == "crossdep":
                lines.append(node.line)
    return tuple(lines)


def lint_spec(
    spec: Spec,
    *,
    ports: Mapping[str, PortSpec] | None = None,
    classes: Mapping[str, type] | None = None,
    name: str = "app",
    machine_nodes: int | None = None,
) -> list[Diagnostic]:
    """Run all analysis passes over a parsed specification.

    ``ports`` is the PortSpec registry (component classes / stream
    directions); without it only the AST-level passes run, since stream
    tables need port directions.  ``classes`` optionally maps class names
    to implementations so the cost-model lint (X403) can inspect them.
    ``machine_nodes`` is the deployment's worker count; when given, the
    over-slicing lint (X404) flags replication wider than the machine.
    """
    bag = DiagnosticBag()
    bag.extend(collect_diagnostics(spec, registry=ports).items)
    liveness.run_ast_passes(bag, spec)
    if bag.has_errors or ports is None:
        return bag.sorted()

    try:
        program = expand(spec, ports, name=name, validated=True)
    except ReproError as exc:
        bag.report("X118", f"expansion failed: {exc}")
        return bag.sorted()

    crossdep_lines = _crossdep_lines(spec)
    default_states = program.default_option_states()
    instance_lines = {
        iid: inst.line for iid, inst in program.components.items()
    }

    tables_per_config: list[dict] = []
    default_pg = None
    for states in reachable_configurations(program):
        context = _config_context(states, default_states)
        try:
            pg = program.build_graph(states, check=False)
        except ReproError as exc:
            bag.report(
                "X307",
                f"reconfigured option states fail to splice: {exc}{context}",
            )
            continue
        tables_per_config.append(pg.streams)
        concurrency.check_configuration(
            bag, program, pg, context=context, crossdep_lines=crossdep_lines
        )
        formats.check_formats(bag, program, pg, context=context)
        if not context:
            default_pg = pg

    liveness.check_dead_streams(bag, tables_per_config, instance_lines)
    concurrency.check_event_queues(bag, program)
    if default_pg is not None:
        perf.run_perf_passes(bag, program, default_pg, classes,
                             machine_nodes=machine_nodes)
    return bag.sorted()


def lint_string(
    text: str,
    *,
    ports: Mapping[str, PortSpec] | None = None,
    classes: Mapping[str, type] | None = None,
    name: str = "app",
    machine_nodes: int | None = None,
) -> list[Diagnostic]:
    """Lint XSPCL source text; parse failures become an X001 diagnostic."""
    try:
        spec = parse_string(text)
    except ParseError as exc:
        bag = DiagnosticBag()
        bag.report("X001", str(exc), line=exc.line)
        return bag.sorted()
    return lint_spec(spec, ports=ports, classes=classes, name=name,
                     machine_nodes=machine_nodes)


def lint_file(
    path: str | Path,
    *,
    ports: Mapping[str, PortSpec] | None = None,
    classes: Mapping[str, type] | None = None,
    machine_nodes: int | None = None,
) -> list[Diagnostic]:
    """Lint an XSPCL file; the returned diagnostics carry ``path``."""
    path = Path(path)
    diagnostics = lint_string(
        path.read_text(encoding="utf-8"),
        ports=ports,
        classes=classes,
        name=path.stem,
        machine_nodes=machine_nodes,
    )
    return [
        Diagnostic(
            code=d.code,
            severity=d.severity,
            message=d.message,
            line=d.line,
            where=d.where,
            path=str(path),
        )
        for d in diagnostics
    ]
