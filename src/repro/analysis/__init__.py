"""Whole-program static analysis for XSPCL specifications (``xspcl lint``).

Modules:

* :mod:`repro.analysis.diagnostics` — stable diagnostic codes, severities,
  the collect-all :class:`DiagnosticBag`, and text/JSON renderers;
* :mod:`repro.analysis.liveness` — dead-flow passes (``X2xx``);
* :mod:`repro.analysis.concurrency` — deadlock / reconfiguration-safety
  passes (``X3xx``);
* :mod:`repro.analysis.perf` — performance lint (``X4xx``);
* :mod:`repro.analysis.engine` — the pass driver: ``lint_spec`` /
  ``lint_file``.

The engine symbols are re-exported lazily (PEP 562): the validator in
:mod:`repro.core` imports ``repro.analysis.diagnostics`` while the engine
imports :mod:`repro.core`, and deferring the engine import keeps that
cycle open.
"""

from repro.analysis.diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    DiagnosticBag,
    Severity,
    render_json,
    render_text,
)

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "DiagnosticBag",
    "Severity",
    "render_json",
    "render_text",
    "lint_spec",
    "lint_file",
    "lint_string",
    "solve_formats",
]

_ENGINE_EXPORTS = ("lint_spec", "lint_file", "lint_string", "solve_formats")


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        from repro.analysis import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
