"""Command-line interface: the XSPCL processing tool.

Subcommands mirror the paper's toolchain (Fig. 1):

* ``validate`` — check an XSPCL document;
* ``lint``     — whole-program static analysis (deadlock, dead flow,
  reconfiguration safety, performance lint) with stable ``Xnnn`` codes;
* ``expand``   — inline procedures / replicate parallel shapes and report
  the resulting graph (optionally as DOT);
* ``run``      — execute a specification on the threaded Hinch runtime or
  the SpaceCAKE simulator;
* ``predict``  — PAMELA/SPC analytic performance estimate;
* ``codegen``  — emit the standalone Python glue module;
* ``figures``  — regenerate the paper's result figures (FIG8/FIG9/FIG10,
  ablations, prediction accuracy);
* ``bench``    — wall-clock performance harness: time the figure sweeps
  and the simulator micro-benchmarks, write ``BENCH_simulator.json``,
  and compare against the committed baseline (docs/performance.md);
* ``apps``     — write the built-in applications as XSPCL XML.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _load_program(path: str, name: str | None = None):
    from repro.components.registry import default_ports
    from repro.core import expand, parse_file

    spec = parse_file(path)
    return expand(spec, default_ports(), name=name or Path(path).stem)


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.diagnostics import Severity
    from repro.components.registry import default_ports
    from repro.core import parse_file
    from repro.core.validator import collect_diagnostics

    spec = parse_file(args.spec)
    registry = None if args.no_registry else default_ports()
    errors = collect_diagnostics(spec, registry=registry).at_or_above(
        Severity.ERROR
    )
    if errors:
        for d in errors:
            line = f":{d.line}" if d.line is not None else ""
            print(f"{args.spec}{line}: error: [{d.code}] {d.message}",
                  file=sys.stderr)
        print(f"{args.spec}: {len(errors)} validation error(s)",
              file=sys.stderr)
        return 1
    n_components = sum(
        1
        for proc in spec.procedures.values()
        for node in _walk(proc.body)
        if type(node).__name__ == "ComponentNode"
    )
    print(
        f"{args.spec}: OK ({len(spec.procedures)} procedure(s), "
        f"{n_components} component declaration(s))"
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint_file
    from repro.analysis.diagnostics import Severity, render_json, render_text
    from repro.components.registry import default_ports, default_registry

    if args.no_registry:
        ports = classes = None
    else:
        classes = default_registry()
        ports = default_ports(classes)
    diagnostics = []
    for path in args.specs:
        diagnostics.extend(
            lint_file(path, ports=ports, classes=classes,
                      machine_nodes=args.nodes)
        )
    formats = _solved_formats(args.specs) if args.show_formats else None
    if args.format == "json":
        print(render_json(diagnostics, formats=formats))
    else:
        print(render_text(diagnostics))
        if formats is not None:
            _print_format_tables(formats)
    threshold = Severity.parse(args.fail_on)
    return 1 if any(d.severity >= threshold for d in diagnostics) else 0


def _solved_formats(specs: list[str]) -> dict:
    """Per-spec solved format tables for ``lint --show-formats``."""
    from repro.analysis import solve_formats

    tables: dict = {}
    for path in specs:
        try:
            program = _load_program(path)
        except ReproError:
            continue  # lint already reported why
        tables[path] = [
            {
                "options": solution.option_states,
                "streams": {
                    name: solved.to_dict()
                    for name, solved in sorted(solution.streams.items())
                },
            }
            for solution in solve_formats(program)
        ]
    return tables


def _print_format_tables(formats: dict) -> None:
    for path, solutions in formats.items():
        for solution in solutions:
            options = solution["options"]
            label = (
                ", ".join(f"{k}={'on' if v else 'off'}"
                          for k, v in sorted(options.items()))
                or "default"
            )
            print(f"\n{path}: solved formats [{label}]")
            for name, fmt in solution["streams"].items():
                shape = (
                    "x".join(str(d) for d in fmt["shape"])
                    if fmt["shape"] is not None
                    else "?"
                )
                origin = "declared" if fmt["declared"] else "inferred"
                print(
                    f"  {name:28s} kind={fmt['kind'] or '?':9s} "
                    f"dtype={fmt['dtype'] or '?':8s} shape={shape:12s} "
                    f"colorspace={fmt['colorspace'] or '?':6s} ({origin})"
                )


def _walk(body):
    from repro.core.ast import walk_body

    return walk_body(body)


def cmd_expand(args: argparse.Namespace) -> int:
    program = _load_program(args.spec)
    pg = program.build_graph()
    print(f"application {program.name!r}")
    print(f"  component instances : {len(program.components)}")
    print(f"  graph nodes / edges : {len(pg.graph)} / {pg.graph.num_edges}")
    print(f"  streams             : {len(pg.streams)}")
    print(f"  managers / options  : {len(program.managers)} / {len(program.options)}")
    if args.dot:
        from repro.graph.dot import taskgraph_to_dot

        Path(args.dot).write_text(taskgraph_to_dot(pg.graph, name=program.name))
        print(f"  DOT written to      : {args.dot}")
    return 0


def _print_fusion_report(runtime) -> None:
    report = getattr(runtime, "fusion_report", None)
    if report is None:
        return
    print(
        f"chain fusion ({report.backend}): {report.fused_node_count} fused "
        f"kernel(s), {len(report.internal_streams)} stream(s) made "
        f"worker-local"
    )
    if report.backend != report.requested_backend:
        print(
            f"  note: backend {report.requested_backend!r} unavailable, "
            f"fell back to {report.backend!r}"
        )


def _usage_error(message: str) -> int:
    """Report a structured usage error (exit status 2, like argparse)."""
    print(f"usage error: {message}", file=sys.stderr)
    return 2


def _check_run_args(args: argparse.Namespace) -> str | None:
    """Up-front validation of ``run`` knob combinations.

    Catches the degenerate values that would otherwise reach the runtime
    and fail obscurely (``--batch 0``, ``--workers 0``) or hang
    (``--pipeline-depth 0`` admits no iterations), and the silently
    ignored combinations (``--inject-fault`` on a backend that cannot
    inject, ``--objective deadline`` without a budget).  Returns the
    error message, or ``None`` when the knobs are coherent.
    """
    workers = args.workers if args.workers is not None else args.nodes
    if args.nodes < 1:
        return f"--nodes must be >= 1, got {args.nodes}"
    if workers < 1:
        return f"--workers must be >= 1, got {workers}"
    if args.iterations < 0:
        return f"--iterations must be >= 0, got {args.iterations}"
    if args.pipeline_depth < 1:
        return (
            f"--pipeline-depth must be >= 1, got {args.pipeline_depth} "
            "(a depth of 0 admits no iterations)"
        )
    if args.batch < 1:
        return f"--batch must be >= 1, got {args.batch}"
    if args.batch > 1 and args.backend != "process":
        return "--batch applies to the process backend only"
    if args.watchdog is not None and args.watchdog <= 0:
        return f"--watchdog must be > 0 seconds, got {args.watchdog}"
    if args.max_retries < 0:
        return f"--max-retries must be >= 0, got {args.max_retries}"
    if args.inject_fault is not None and args.backend != "process":
        return (
            f"--inject-fault applies to the process backend only "
            f"(faults cannot be injected on --backend {args.backend}); "
            "it would otherwise be silently ignored"
        )
    if args.fuse and args.backend == "sim":
        return "--fuse applies to the threaded and process backends only"
    if args.autotune and args.backend != "process":
        return "--autotune applies to the process backend only"
    if args.deadline_ms is not None and not args.autotune:
        return "--deadline needs --autotune"
    if args.objective == "deadline" and args.deadline_ms is None:
        return "--objective deadline needs --deadline MS"
    return None


def cmd_run(args: argparse.Namespace) -> int:
    from repro.components.registry import default_registry

    problem = _check_run_args(args)
    if problem is not None:
        return _usage_error(problem)
    impls: dict[str, str] = {}
    for pick in args.impl or ():
        name, sep, impl = pick.partition("=")
        if not sep or not name or not impl:
            return _usage_error(f"--impl expects name=impl, got {pick!r}")
        impls[name] = impl
    if args.inject_fault is not None:
        # Parse up front so a malformed or duplicate-index spec is a
        # usage error before any spec loading or worker spawn.
        from repro.hinch.faults import parse_faults

        try:
            parse_faults(args.inject_fault)
        except ReproError as exc:
            return _usage_error(str(exc))
    program = _load_program(args.spec)
    registry = default_registry(impls=impls or None)
    workers = args.workers if args.workers is not None else args.nodes
    if args.backend == "threaded":
        from repro.hinch import ThreadedRuntime

        runtime = ThreadedRuntime(
            program,
            registry,
            nodes=workers,
            pipeline_depth=args.pipeline_depth,
            max_iterations=args.iterations,
            fuse=args.fuse,
            fuse_backend=args.fuse_backend,
        )
        result = runtime.run()
        print(
            f"completed {result.completed_iterations} iterations in "
            f"{result.elapsed_seconds:.3f}s on {workers} worker thread(s); "
            f"{result.reconfig_count} reconfiguration(s)"
        )
        _print_fusion_report(runtime)
    elif args.backend == "process":
        from repro.hinch import ProcessRuntime

        runtime = ProcessRuntime(
            program,
            registry,
            workers=workers,
            pipeline_depth=args.pipeline_depth,
            max_iterations=args.iterations,
            batch=args.batch,
            watchdog=args.watchdog,
            max_retries=args.max_retries,
            respawn=not args.no_respawn,
            faults=args.inject_fault,
            fuse=args.fuse,
            fuse_backend=args.fuse_backend,
            autotune=args.autotune,
            objective=(
                "deadline" if args.deadline_ms is not None
                else args.objective
            ),
            deadline_ms=args.deadline_ms,
        )
        result = runtime.run()
        fps = (
            result.completed_iterations / result.elapsed_seconds
            if result.elapsed_seconds > 0
            else 0.0
        )
        print(
            f"completed {result.completed_iterations} iterations in "
            f"{result.elapsed_seconds:.3f}s on {workers} worker process(es) "
            f"({fps:.1f} frames/s); {result.reconfig_count} reconfiguration(s)"
        )
        if result.fault_events:
            counts: dict[str, int] = {}
            for event in result.fault_events:
                counts[event["kind"]] = counts.get(event["kind"], 0) + 1
            summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            print(f"fault recovery: {summary}")
            for event in result.fault_events:
                if event["kind"] == "unfired":
                    print(f"warning: {event['detail']}", file=sys.stderr)
        if args.autotune:
            spawned = result.workers_spawned
            print(
                f"autotune: {len(result.autotune_events)} decision(s), "
                f"{spawned} worker(s) spawned, final workers="
                f"{runtime.workers} batch={runtime.batch}"
            )
            for event in result.autotune_events:
                achieved = event["achieved_fps"]
                achieved_s = (
                    f"{achieved:.2f}" if achieved is not None else "n/a"
                )
                print(
                    f"  [{event['kind']}@iter{event['iteration']}] "
                    f"{event['reason']} — predicted "
                    f"{event['predicted_fps']:.2f} f/s, achieved "
                    f"{achieved_s} f/s"
                )
        _print_fusion_report(runtime)
    else:
        from repro.spacecake import SimRuntime

        result = SimRuntime(
            program,
            registry,
            nodes=args.nodes,
            pipeline_depth=args.pipeline_depth,
            max_iterations=args.iterations,
            execute=args.execute,
        ).run()
        print(
            f"simulated {result.completed_iterations} iterations on "
            f"{args.nodes} node(s): {result.cycles / 1e6:,.1f} Mcycles, "
            f"utilization {result.utilization:.0%}, "
            f"{result.reconfig_count} reconfiguration(s)"
        )
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    from repro.components.registry import default_registry
    from repro.prediction import (
        check_deadline,
        min_nodes_for_deadline,
        predict_run,
    )

    program = _load_program(args.spec)
    registry = default_registry()
    cycles = predict_run(
        program,
        registry,
        nodes=args.nodes,
        iterations=args.iterations,
        pipeline_depth=args.pipeline_depth,
    )
    print(
        f"predicted {cycles / 1e6:,.1f} Mcycles for {args.iterations} "
        f"iterations on {args.nodes} node(s)"
    )
    if args.deadline is not None:
        report = check_deadline(
            program, registry, nodes=args.nodes,
            frame_budget_cycles=args.deadline,
            pipeline_depth=args.pipeline_depth,
        )
        verdict = "MEETS" if report.meets_throughput else "MISSES"
        print(
            f"deadline {args.deadline:,.0f} cycles/frame: {verdict} "
            f"(initiation interval {report.initiation_interval:,.0f}, "
            f"headroom {report.headroom:+.0%}, "
            f"latency {report.latency_frames:.1f} frame(s))"
        )
        if not report.meets_throughput:
            best = min_nodes_for_deadline(
                program, registry, frame_budget_cycles=args.deadline,
                pipeline_depth=args.pipeline_depth,
            )
            if best is None:
                print("no node count up to 9 meets this deadline")
            else:
                print(f"smallest node count that meets it: {best.nodes}")
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    from repro.core.codegen import generate_glue

    program = _load_program(args.spec)
    source = generate_glue(
        program, module_name=Path(args.output).stem,
        default_iterations=args.iterations,
    )
    Path(args.output).write_text(source)
    print(f"glue module written to {args.output}")
    return 0


_FIGURES = {
    "fig8": "fig8_sequential_overhead",
    "fig9": "fig9_speedup",
    "fig10": "fig10_reconfiguration_overhead",
    "abl1": "ablation_fusion",
    "abl2": "ablation_pipeline_depth",
    "abl3": "ablation_spization",
    "pred": "prediction_accuracy",
}


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench import figures as figures_mod
    from repro.bench.harness import Harness

    harness = Harness(frames_scale=args.scale)
    names = list(_FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        fn = getattr(figures_mod, _FIGURES[name])
        result = fn(harness)
        print(result.render())
        print()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    if args.suite == "runtime":
        from repro.bench import runtime as suite
    else:
        from repro.bench import perf as suite

    profile = suite.PROFILES[args.profile]
    output = args.output or suite.DEFAULT_OUTPUT
    max_regression = (
        args.max_regression if args.max_regression is not None
        else suite.DEFAULT_MAX_REGRESSION
    )
    baseline = None
    baseline_path = Path(args.baseline) if args.baseline else Path(output)
    if baseline_path.exists():
        # Read before collect(): the default baseline is the committed
        # copy of the very file we are about to overwrite.
        baseline = json.loads(baseline_path.read_text())
    elif args.baseline or args.check:
        print(f"error: baseline {baseline_path} not found", file=sys.stderr)
        return 2

    if args.suite == "runtime":
        payload = suite.collect(profile, repeats=args.repeat)
    else:
        payload = suite.collect(profile, scale=args.scale,
                                repeats=args.repeat)
    if baseline is not None and "pre_optimization_reference" in baseline:
        # The seed-implementation reference timings describe a fixed
        # historical tree, not this run — carry them forward so a bench
        # run never erases them from the committed baseline.
        payload["pre_optimization_reference"] = baseline[
            "pre_optimization_reference"
        ]
    Path(output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(suite.render_report(payload, baseline))
    print(f"\nresults written to {output}")

    if baseline is not None:
        regressions = suite.compare(
            payload, baseline, max_regression=max_regression
        )
        if regressions:
            print(
                f"\n{len(regressions)} wall-clock regression(s) vs "
                f"{baseline_path}:",
                file=sys.stderr,
            )
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            if args.check:
                return 1
        else:
            print(f"no wall-clock regressions vs {baseline_path} "
                  f"(limit {max_regression:+.0%})")
    return 0


_APPS = {
    "pip1": ("pip", dict(n_pips=1)),
    "pip2": ("pip", dict(n_pips=2)),
    "pip12": ("pip", dict(n_pips=2, reconfigurable=True)),
    "jpip1": ("jpip", dict(n_pips=1)),
    "jpip2": ("jpip", dict(n_pips=2)),
    "jpip12": ("jpip", dict(n_pips=2, reconfigurable=True)),
    "blur3": ("blur", dict(size=3)),
    "blur5": ("blur", dict(size=5)),
    "blur35": ("blur", dict(reconfigurable=True)),
    "audio8": ("audio", dict(channels=8)),
    "audio12": ("audio", dict(channels=8, reconfigurable=True)),
}


def cmd_apps(args: argparse.Namespace) -> int:
    from repro import apps as apps_mod
    from repro.core import spec_to_xml

    kind, kwargs = _APPS[args.app]
    builder = getattr(apps_mod, f"build_{kind}")
    spec = builder(**kwargs)
    xml = spec_to_xml(spec)
    if args.output:
        Path(args.output).write_text(xml)
        print(f"{args.app} written to {args.output}")
    else:
        print(xml)
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import run_campaign
    from repro.fuzz.campaign import replay_file

    if args.replay:
        case, failure = replay_file(args.replay)
        print(f"replaying {args.replay}: {case.describe()}")
        if failure is None:
            print("PASS — the case no longer fails")
            return 0
        print(f"FAIL {failure}")
        return 1

    if args.cases < 1:
        return _usage_error(f"--cases must be >= 1, got {args.cases}")
    if args.max_nodes < 2:
        return _usage_error(
            f"--max-nodes must be >= 2 (source + sink), got {args.max_nodes}"
        )

    def progress(case, failure):
        status = "FAIL" if failure else "ok  "
        line = f"  [{status}] case {case.seed}: {case.describe()}"
        if failure:
            line += f"\n         {failure}"
        print(line)

    report = run_campaign(
        seed=args.seed,
        cases=args.cases,
        max_nodes=args.max_nodes,
        out_dir=args.out,
        shrink=not args.no_shrink,
        progress=progress if args.verbose else None,
    )
    print(
        f"fuzz: {report.passed}/{report.cases} case(s) passed "
        f"(seed {args.seed}, max {args.max_nodes} nodes)"
    )
    for case, failure, path in report.failures:
        print(f"FAIL case {case.seed}: {failure}", file=sys.stderr)
        print(f"  shrunk repro: {path}", file=sys.stderr)
        print(
            f"  replay: PYTHONPATH=src python -m repro fuzz --replay {path}",
            file=sys.stderr,
        )
    return 0 if report.ok else 1


def _bench_profiles() -> list[str]:
    from repro.bench.perf import PROFILES

    return list(PROFILES)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xspcl",
        description="XSPCL coordination-language toolchain (ICPP'07 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="check an XSPCL document")
    p.add_argument("spec")
    p.add_argument("--no-registry", action="store_true",
                   help="skip component-class checks")
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser(
        "lint",
        help="static analysis: deadlock / dead-flow / reconfiguration-safety "
             "/ performance lint (docs/lint.md catalogues the codes)",
    )
    p.add_argument("specs", nargs="+", metavar="spec")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--fail-on", choices=("error", "warning"), default="error",
                   help="lowest severity that causes a nonzero exit")
    p.add_argument("--no-registry", action="store_true",
                   help="skip component-class and graph-level checks")
    p.add_argument("--nodes", type=int, default=None,
                   help="target machine node count; enables the "
                        "over-slicing lint (X404)")
    p.add_argument("--show-formats", action="store_true",
                   help="append the solved per-stream format table for "
                        "every reachable configuration (X5xx pass)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("expand", help="expand and summarize an application")
    p.add_argument("spec")
    p.add_argument("--dot", help="write the task graph as DOT to this file")
    p.set_defaults(fn=cmd_expand)

    p = sub.add_parser("run", help="execute a specification")
    p.add_argument("spec")
    p.add_argument("--backend", choices=("threaded", "process", "sim"),
                   default="threaded")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--workers", type=int, default=None,
                   help="process backend: worker process count "
                        "(default: --nodes)")
    p.add_argument("--iterations", type=int, default=16)
    p.add_argument("--pipeline-depth", type=int, default=5)
    p.add_argument("--batch", type=int, default=1,
                   help="process backend: max jobs per worker lease; >1 "
                        "amortizes dispatch (pickling, pipe wakeups, "
                        "alloc RPCs) and enables worker-resident stream "
                        "tokens and slice affinity (default: 1)")
    p.add_argument("--execute", action="store_true",
                   help="sim backend: also run components functionally")
    p.add_argument("--inject-fault", default=None, metavar="SPEC",
                   help="process backend: scripted worker failures, e.g. "
                        "'kill:1,hang:5,slow:2:50' (kind:job[:ms], 1-based "
                        "dispatch order; see docs/fault-tolerance.md)")
    p.add_argument("--watchdog", type=float, default=None, metavar="SECONDS",
                   help="process backend: per-job watchdog — a worker "
                        "holding one job longer is killed and the job "
                        "retried (default: off)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="process backend: retry budget per job after "
                        "worker loss (default: 2)")
    p.add_argument("--no-respawn", action="store_true",
                   help="process backend: degrade onto surviving workers "
                        "instead of respawning dead ones")
    p.add_argument("--impl", action="append", metavar="NAME=IMPL",
                   help="pick a registered implementation for a component "
                        "class, e.g. --impl downscale_field=strided "
                        "(repeatable; see docs/formats.md)")
    p.add_argument("--autotune", action="store_true",
                   help="process backend: online controller that widens/"
                        "narrows slice replication, grows/shrinks the "
                        "worker pool and retunes --batch at quiescent "
                        "reconfiguration points, seeded by the cost model "
                        "and corrected by measured occupancy")
    p.add_argument("--objective", choices=("throughput", "deadline"),
                   default="throughput",
                   help="autotune goal: maximise frames/s (default) or "
                        "meet --deadline at least cost")
    p.add_argument("--deadline", dest="deadline_ms", type=float,
                   default=None, metavar="MS",
                   help="autotune: per-frame wall-clock budget in "
                        "milliseconds (implies --objective deadline)")
    p.add_argument("--fuse", action="store_true",
                   help="threaded/process backends: compile provable linear "
                        "chains into single-dispatch fused kernels; "
                        "intermediate planes stay worker-local (see "
                        "docs/performance.md §Chain fusion)")
    p.add_argument("--fuse-backend", choices=("numpy", "numba"),
                   default="numpy",
                   help="fused-kernel codegen backend; 'numba' falls back "
                        "to numpy when numba is not installed (default: "
                        "numpy)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("predict", help="analytic performance estimate")
    p.add_argument("spec")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--iterations", type=int, default=16)
    p.add_argument("--pipeline-depth", type=int, default=5)
    p.add_argument("--deadline", type=float, default=None,
                   help="per-frame cycle budget to verify (real-time check)")
    p.set_defaults(fn=cmd_predict)

    p = sub.add_parser("codegen", help="emit a Python glue module")
    p.add_argument("spec")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--iterations", type=int, default=16)
    p.set_defaults(fn=cmd_codegen)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.add_argument("figure", choices=[*_FIGURES, "all"])
    p.add_argument("--scale", type=float, default=1.0,
                   help="frame-count scale (1.0 = paper scale)")
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser(
        "bench",
        help="time the simulator (figure sweeps + micro-benchmarks) and "
             "compare against the committed baseline",
    )
    p.add_argument("--suite", choices=("sim", "runtime"), default="sim",
                   help="sim: SpaceCAKE wall-clock suite (BENCH_simulator"
                        ".json); runtime: threaded/process backend "
                        "throughput suite (BENCH_runtime.json)")
    p.add_argument("--profile", choices=sorted(_bench_profiles()),
                   default="quick",
                   help="measurement profile (quick = CI smoke)")
    p.add_argument("--scale", type=float, default=None,
                   help="sim suite: override the profile's frame-count "
                        "scale")
    p.add_argument("--repeat", type=int, default=None,
                   help="override the profile's repeat count")
    p.add_argument("-o", "--output", default=None,
                   help="result file (default: the suite's BENCH_*.json "
                        "at the repo root)")
    p.add_argument("--baseline", default=None,
                   help="baseline JSON to compare against (default: the "
                        "pre-existing output file)")
    p.add_argument("--max-regression", type=float, default=None,
                   help="allowed median wall-clock slowdown per metric "
                        "(default: 0.25 sim, 0.35 runtime)")
    p.add_argument("--check", action="store_true",
                   help="exit nonzero on any regression beyond the limit")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("apps", help="dump a built-in application as XSPCL")
    p.add_argument("app", choices=sorted(_APPS))
    p.add_argument("-o", "--output")
    p.set_defaults(fn=cmd_apps)

    p = sub.add_parser(
        "fuzz",
        help="adversarial scenario fuzzing: random SP graphs x "
             "reconfiguration x faults, differentially checked across "
             "backends (see docs/fuzzing.md)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="first case seed; case k uses seed+k (default: 0)")
    p.add_argument("--cases", type=int, default=25,
                   help="number of generated cases (default: 25)")
    p.add_argument("--max-nodes", type=int, default=8,
                   help="approximate expanded-component budget per case "
                        "(default: 8)")
    p.add_argument("--out", default="fuzz-failures", metavar="DIR",
                   help="directory for shrunk failure repros "
                        "(default: fuzz-failures)")
    p.add_argument("--no-shrink", action="store_true",
                   help="persist failing cases unshrunk")
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="re-check one persisted failure case and exit")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print a line per case")
    p.set_defaults(fn=cmd_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
