"""Audio / sensor-fusion components: small records at high rate.

The video applications move hundreds of kilobytes per frame through a
handful of dispatches; a microphone-array front-end is the opposite
workload — records of a few hundred *bytes* (``channels x block`` int16
samples) at thousands of records per second, so per-dispatch overhead
dominates and batching/fusion knobs matter far more than kernel cycles.
These components give the bench and the fuzzer that anti-JPiP profile.

A record is a plane of shape ``(channels, block)``: one row per input
channel, ``block`` samples of one hop along time.  ``band_filter`` is
data-parallel over *channels* (rows), mirroring how the video components
slice over image rows, so the same grouping/reslicing machinery applies
unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.components import filters
from repro.core.ports import PortSpec
from repro.core.program import ComponentInstance
from repro.errors import ComponentError
from repro.hinch.component import Component, JobContext
from repro.spacecake.costmodel import JobCost, PortTraffic

__all__ = [
    "AudioSource",
    "BandFilter",
    "FuseSensors",
    "FeatureSink",
    "synthetic_record",
]

#: int16 samples
BYTES_PER_SAMPLE = 2


def _record_geometry(instance: ComponentInstance) -> tuple[int, int]:
    try:
        return int(instance.params["channels"]), int(instance.params["block"])
    except KeyError:
        raise ComponentError(
            f"component {instance.instance_id!r} needs channels/block "
            "params for its cost profile"
        ) from None


def _slice_fraction(instance: ComponentInstance) -> float:
    if instance.slice is None:
        return 1.0
    return 1.0 / instance.slice[1]


def _instance_rows(
    instance: ComponentInstance, height: int
) -> tuple[int, int] | None:
    if instance.slice is None:
        return 0, height
    index, total = instance.slice
    return filters.slice_rows(height, index, total)


def synthetic_record(
    index: int, channels: int, block: int, *, seed: int = 0
) -> np.ndarray:
    """Deterministic int16 test signal: per-channel tones plus noise.

    Channel ``c`` carries a sine at a channel-specific frequency with a
    deterministic noise floor — phase advances with ``index`` so
    consecutive records form one continuous signal per channel.
    """
    t = (np.arange(block, dtype=np.float64) + index * block)
    rows = []
    for c in range(channels):
        freq = 0.01 + 0.002 * c + 0.0005 * (seed % 7)
        tone = np.sin(2.0 * np.pi * freq * t) * 12000.0
        rng = np.random.default_rng(seed * 1_000_003 + c * 101 + index)
        noise = rng.integers(-800, 800, size=block).astype(np.float64)
        rows.append(tone + noise)
    data = np.stack(rows)
    return np.clip(data, -32768, 32767).astype(np.int16)


class AudioSource(Component):
    """Synthesizes deterministic ``channels x block`` int16 records."""

    ports = PortSpec(
        outputs=("samples",),
        required_params=("channels", "block"),
        optional_params=("seed", "frames"),
        formats={
            "samples": "kind=plane shape=channels,block dtype=int16 "
                       "colorspace=audio",
        },
    )
    READ_CYCLES_PER_BYTE = 0.4  # DMA-in from the capture device

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        channels, block = _record_geometry(instance)
        nbytes = channels * block * BYTES_PER_SAMPLE
        return JobCost(
            compute_cycles=cls.READ_CYCLES_PER_BYTE * nbytes,
            traffic=(PortTraffic("samples", nbytes, True),),
        )

    def __init__(self, instance: ComponentInstance) -> None:
        super().__init__(instance)
        self._cache: dict[int, np.ndarray] = {}

    def _record(self, index: int) -> np.ndarray:
        limit = self.param("frames")
        if limit is not None:
            index %= int(limit)  # loop the clip, like the video sources
        record = self._cache.get(index)
        if record is None:
            record = synthetic_record(
                index,
                int(self.require_param("channels")),
                int(self.require_param("block")),
                seed=int(self.param("seed", 0)),
            )
            self._cache[index] = record
        return record

    def run(self, job: JobContext) -> None:
        job.write("samples", self._record(job.iteration))


class BandFilter(Component):
    """3-tap FIR along time, per channel — data-parallel over channels.

    ``taps`` picks the kernel: ``smooth`` (low-pass ``[1,2,1]/4``) or
    ``diff`` (edge/onset ``[-1,2,-1]``, energy-preserving clip).  Each
    sliced copy filters only its channel rows; the row-range contracts
    below make sliced chains fusable exactly like the video filters.
    """

    ports = PortSpec(
        inputs=("input",),
        outputs=("output",),
        required_params=("channels", "block"),
        optional_params=("taps",),
        formats={
            "input": "kind=plane shape=channels,block dtype=int16 "
                     "colorspace=audio",
            "output": "kind=plane shape=channels,block dtype=int16 "
                      "colorspace=audio",
        },
    )
    CYCLES_PER_SAMPLE = 3.0  # 3 multiply-accumulates

    slice: tuple[int, int] | None

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        channels, block = _record_geometry(instance)
        samples = channels * block * _slice_fraction(instance)
        nbytes = int(samples * BYTES_PER_SAMPLE)
        return JobCost(
            compute_cycles=cls.CYCLES_PER_SAMPLE * samples,
            traffic=(
                PortTraffic("input", nbytes, False),
                PortTraffic("output", nbytes, True),
            ),
        )

    @classmethod
    def writes_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        if port == "output":
            return _instance_rows(instance, height)
        return super().writes_rows(instance, port, height)

    @classmethod
    def reads_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        if port == "input":
            return _instance_rows(instance, height)
        return super().reads_rows(instance, port, height)

    def rows(self, height: int) -> tuple[int, int]:
        if self.slice is None:
            return 0, height
        index, total = self.slice
        return filters.slice_rows(height, index, total)

    def _kernel(self) -> np.ndarray:
        taps = str(self.param("taps", "smooth"))
        if taps == "smooth":
            return np.array([0.25, 0.5, 0.25])
        if taps == "diff":
            return np.array([-1.0, 2.0, -1.0])
        raise ComponentError(
            f"unknown taps {taps!r} (expected 'smooth' or 'diff')"
        )

    def run(self, job: JobContext) -> None:
        samples: np.ndarray = job.read("input")
        out = job.buffer("output", shape=samples.shape, dtype=samples.dtype)
        lo, hi = self.rows(samples.shape[0])
        kernel = self._kernel()
        band = samples[lo:hi].astype(np.float64)
        padded = np.pad(band, ((0, 0), (1, 1)), mode="edge")
        acc = (
            padded[:, :-2] * kernel[0]
            + padded[:, 1:-1] * kernel[1]
            + padded[:, 2:] * kernel[2]
        )
        out[lo:hi] = np.clip(acc, -32768, 32767).astype(np.int16)
        job.note_written((hi - lo) * samples.shape[1] * BYTES_PER_SAMPLE)


class FuseSensors(Component):
    """Weighted fusion of two aligned sensor streams (int32 accumulate)."""

    ports = PortSpec(
        inputs=("a", "b"),
        outputs=("fused",),
        required_params=("channels", "block"),
        optional_params=("weight",),
        formats={
            "a": "kind=plane shape=channels,block dtype=int16 "
                 "colorspace=audio",
            "b": "kind=plane shape=channels,block dtype=int16 "
                 "colorspace=audio",
            "fused": "kind=plane shape=channels,block dtype=int16 "
                     "colorspace=audio",
        },
    )
    CYCLES_PER_SAMPLE = 2.0  # two loads, one weighted add

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        channels, block = _record_geometry(instance)
        samples = channels * block
        nbytes = samples * BYTES_PER_SAMPLE
        return JobCost(
            compute_cycles=cls.CYCLES_PER_SAMPLE * samples,
            traffic=(
                PortTraffic("a", nbytes, False),
                PortTraffic("b", nbytes, False),
                PortTraffic("fused", nbytes, True),
            ),
        )

    def run(self, job: JobContext) -> None:
        a: np.ndarray = job.read("a")
        b: np.ndarray = job.read("b")
        weight = float(self.param("weight", 0.5))
        acc = a.astype(np.int32) * weight + b.astype(np.int32) * (1.0 - weight)
        job.write("fused", np.clip(acc, -32768, 32767).astype(np.int16))


class FeatureSink(Component):
    """Collects fused records; the audio pipeline's terminal.

    Same exactly-once checkpoint contract as the video sinks: collected
    records ride worker snapshots, so kill/retry recovery never loses or
    duplicates a record.
    """

    ports = PortSpec(
        inputs=("input",),
        required_params=("channels", "block"),
        optional_params=("collect",),
        formats={
            "input": "kind=plane shape=channels,block dtype=int16 "
                     "colorspace=audio",
        },
    )
    WRITE_CYCLES_PER_BYTE = 0.4

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        channels, block = _record_geometry(instance)
        nbytes = channels * block * BYTES_PER_SAMPLE
        return JobCost(
            compute_cycles=cls.WRITE_CYCLES_PER_BYTE * nbytes,
            traffic=(PortTraffic("input", nbytes, False),),
        )

    def __init__(self, instance: ComponentInstance) -> None:
        super().__init__(instance)
        self.records: list[tuple[int, np.ndarray]] = []
        self.records_written = 0

    def run(self, job: JobContext) -> None:
        record = job.read("input")
        self.records_written += 1
        if self.param("collect"):
            self.records.append((job.iteration, record.copy()))

    def ordered_records(self) -> list[np.ndarray]:
        return [r for _, r in sorted(self.records, key=lambda kv: kv[0])]

    # alias so differential checkers can treat every collecting sink alike
    ordered_planes = ordered_records

    def snapshot_state(self) -> tuple[int, list[tuple[int, np.ndarray]]]:
        return self.records_written, self.records

    def merge_state(
        self, state: tuple[int, list[tuple[int, np.ndarray]]]
    ) -> None:
        written, records = state
        self.records_written += written
        self.records.extend(records)

    def checkpoint_state(
        self,
    ) -> tuple[int, list[tuple[int, np.ndarray]]] | None:
        if not self.records_written and not self.records:
            return None
        state = (self.records_written, self.records)
        self.records_written = 0
        self.records = []
        return state
