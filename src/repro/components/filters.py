"""Pixel kernels: down scaling, blending, separable Gaussian blur.

Pure numpy functions operating on single planes (uint8 2-D arrays), so
the streaming components (:mod:`repro.components.streaming`) stay thin
wrappers that only add slicing and port plumbing.  Each kernel supports
row-range restriction (``rows=(lo, hi)``) because data-parallel copies
process horizontal slices of the image — "in case of images these
regions correspond to horizontal slices" (paper §3.3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ComponentError

__all__ = [
    "downscale_plane",
    "blend_plane",
    "gaussian_kernel_1d",
    "blur_plane_horizontal",
    "blur_plane_vertical",
    "slice_rows",
]


def slice_rows(height: int, index: int, total: int) -> tuple[int, int]:
    """Row range [lo, hi) of horizontal slice ``index`` out of ``total``."""
    if not 0 <= index < total:
        raise ComponentError(f"slice index {index} out of range 0..{total - 1}")
    lo = index * height // total
    hi = (index + 1) * height // total
    return lo, hi


def downscale_plane(
    src: np.ndarray,
    factor: int,
    out: np.ndarray | None = None,
    rows: tuple[int, int] | None = None,
) -> np.ndarray:
    """Box-average down scaling by an integer ``factor``.

    ``rows`` restricts computation to output rows [lo, hi) — the slice a
    data-parallel copy owns.  The corresponding input rows are
    ``lo*factor .. hi*factor``, so slices read disjoint input regions.
    """
    if factor < 1:
        raise ComponentError(f"downscale factor must be >= 1, got {factor}")
    h, w = src.shape
    if h % factor or w % factor:
        raise ComponentError(
            f"plane {w}x{h} not divisible by downscale factor {factor}"
        )
    oh, ow = h // factor, w // factor
    if out is None:
        out = np.empty((oh, ow), dtype=src.dtype)
    elif out.shape != (oh, ow):
        raise ComponentError(f"out must be {ow}x{oh}, got {out.shape}")
    lo, hi = rows if rows is not None else (0, oh)
    block = src[lo * factor : hi * factor].reshape(hi - lo, factor, ow, factor)
    # Mean over the factor x factor box; stay in integer domain like the
    # fixed-point CE implementations would.
    out[lo:hi] = (
        block.astype(np.uint32).sum(axis=(1, 3)) // (factor * factor)
    ).astype(src.dtype)
    return out


def blend_plane(
    background: np.ndarray,
    overlay: np.ndarray,
    position: tuple[int, int],
    out: np.ndarray | None = None,
    rows: tuple[int, int] | None = None,
    alpha: float = 1.0,
) -> np.ndarray:
    """Blend ``overlay`` onto ``background`` at ``position`` (row, col).

    ``alpha=1`` is plain insertion (the PiP case); fractional alpha mixes.
    ``rows`` restricts the *output* rows written by this call.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ComponentError(f"alpha must be in [0,1], got {alpha}")
    bh, bw = background.shape
    oh, ow = overlay.shape
    r0, c0 = position
    if r0 < 0 or c0 < 0 or r0 + oh > bh or c0 + ow > bw:
        raise ComponentError(
            f"overlay {ow}x{oh} at {position} exceeds background {bw}x{bh}"
        )
    if out is None:
        out = np.empty_like(background)
    lo, hi = rows if rows is not None else (0, bh)
    out[lo:hi] = background[lo:hi]
    # Intersect the overlay's row span with [lo, hi).
    olo = max(lo, r0)
    ohi = min(hi, r0 + oh)
    if olo < ohi:
        seg = overlay[olo - r0 : ohi - r0]
        if alpha >= 1.0:
            out[olo:ohi, c0 : c0 + ow] = seg
        else:
            mixed = (
                alpha * seg.astype(np.float32)
                + (1.0 - alpha) * background[olo:ohi, c0 : c0 + ow].astype(np.float32)
            )
            out[olo:ohi, c0 : c0 + ow] = np.clip(mixed, 0, 255).astype(
                background.dtype
            )
    return out


def gaussian_kernel_1d(size: int, sigma: float = 1.0) -> np.ndarray:
    """Normalized 1-D Gaussian kernel (odd ``size``), float64."""
    if size % 2 != 1 or size < 1:
        raise ComponentError(f"kernel size must be odd and positive, got {size}")
    if sigma <= 0:
        raise ComponentError(f"sigma must be > 0, got {sigma}")
    half = size // 2
    x = np.arange(-half, half + 1, dtype=np.float64)
    k = np.exp(-(x**2) / (2.0 * sigma**2))
    return k / k.sum()


def _convolve_rows(plane: np.ndarray, kernel: np.ndarray, lo: int, hi: int,
                   axis: int) -> np.ndarray:
    """Correlate rows [lo,hi) of ``plane`` with ``kernel`` along ``axis``.

    Edge-replicated padding; returns float32 of shape (hi-lo, width).
    For axis=0 (vertical), input rows lo-half..hi+half are read — the
    halo that creates the crossdep dependencies between the horizontal
    and vertical blur phases.
    """
    half = len(kernel) // 2
    h, w = plane.shape
    if axis == 1:
        src = plane[lo:hi].astype(np.float32)
        padded = np.pad(src, ((0, 0), (half, half)), mode="edge")
        out = np.zeros_like(src)
        for i, kv in enumerate(kernel):
            out += np.float32(kv) * padded[:, i : i + w]
        return out
    # vertical: read the halo rows, clamped at the image border
    top = max(lo - half, 0)
    bottom = min(hi + half, h)
    src = plane[top:bottom].astype(np.float32)
    pad_top = half - (lo - top)
    pad_bottom = half - (bottom - hi)
    padded = np.pad(src, ((pad_top, pad_bottom), (0, 0)), mode="edge")
    rows = hi - lo
    out = np.zeros((rows, w), dtype=np.float32)
    for i, kv in enumerate(kernel):
        out += np.float32(kv) * padded[i : i + rows]
    return out


def blur_plane_horizontal(
    plane: np.ndarray,
    kernel: np.ndarray,
    out: np.ndarray | None = None,
    rows: tuple[int, int] | None = None,
) -> np.ndarray:
    """Horizontal pass of a separable blur; output in float32-scaled uint8.

    Keeping the intermediate in uint8 (like the fixed-point original)
    loses <1 LSB of precision against a float pipeline.
    """
    h, _ = plane.shape
    lo, hi = rows if rows is not None else (0, h)
    if out is None:
        out = np.empty_like(plane)
    res = _convolve_rows(plane, kernel, lo, hi, axis=1)
    out[lo:hi] = np.clip(np.rint(res), 0, 255).astype(plane.dtype)
    return out


def blur_plane_vertical(
    plane: np.ndarray,
    kernel: np.ndarray,
    out: np.ndarray | None = None,
    rows: tuple[int, int] | None = None,
) -> np.ndarray:
    """Vertical pass; reads a halo of ``len(kernel)//2`` rows around its
    slice, which is why consecutive crossdep parblocks need the i-1/i/i+1
    dependencies of paper Fig. 5."""
    h, _ = plane.shape
    lo, hi = rows if rows is not None else (0, h)
    if out is None:
        out = np.empty_like(plane)
    res = _convolve_rows(plane, kernel, lo, hi, axis=0)
    out[lo:hi] = np.clip(np.rint(res), 0, 255).astype(plane.dtype)
    return out
