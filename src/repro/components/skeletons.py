"""Skeletal parallelism: template components (paper §6, future work).

"Another research direction is skeletal parallelism.  The various shapes
of parallelism we have shown already implement a skeletal template.
This can be extended to the components themselves: Template components
can be developed for certain classes of algorithms.  Using the
initialization parameters, different instances can be instantiated."

This module implements that extension:

* a **kernel registry** of named pure functions over image planes —
  applications select one with the ``kernel`` initialization parameter,
  so one component class covers a whole algorithm family;
* :class:`MapPlane` — the *map* skeleton: applies a row-local kernel to
  its slice of the plane (composes with ``shape="slice"``);
* :class:`StencilPlane` — the *stencil* skeleton: like map but the
  kernel sees a halo of neighbouring rows (composes with
  ``shape="crossdep"`` exactly like the blur phases);
* :class:`ReducePlane` — the *reduce* skeleton: folds a plane to a
  scalar per frame (mean/max/min/sum);
* :class:`Monitor` — reduce + event: posts an event when the scalar
  crosses a threshold, implementing §2.3b's "in non-interactive
  applications, events can be used to respond to special input values".
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.components.filters import slice_rows
from repro.core.ports import PortSpec
from repro.core.program import ComponentInstance
from repro.errors import ComponentError, RegistryError
from repro.hinch.component import Component, JobContext
from repro.spacecake.costmodel import JobCost, PortTraffic

__all__ = [
    "register_kernel",
    "kernel",
    "MapPlane",
    "StencilPlane",
    "ReducePlane",
    "Monitor",
    "SKELETON_REGISTRY",
]

#: name -> (fn, cycles_per_pixel); map kernels take (block, **params) and
#: return an array of the same shape; stencil kernels additionally take
#: the halo rows above/below their block.
_KERNELS: dict[str, tuple[Callable, float]] = {}


def register_kernel(name: str, *, cycles_per_pixel: float = 2.0):
    """Decorator registering a plane kernel for skeleton components."""

    def deco(fn: Callable) -> Callable:
        if name in _KERNELS:
            raise RegistryError(f"kernel {name!r} already registered")
        _KERNELS[name] = (fn, cycles_per_pixel)
        return fn

    return deco


def kernel(name: str) -> tuple[Callable, float]:
    try:
        return _KERNELS[name]
    except KeyError:
        raise ComponentError(
            f"unknown kernel {name!r}; registered: {sorted(_KERNELS)}"
        ) from None


# -- built-in kernels ----------------------------------------------------------


@register_kernel("identity", cycles_per_pixel=0.5)
def _identity(block: np.ndarray) -> np.ndarray:
    return block


@register_kernel("invert", cycles_per_pixel=1.0)
def _invert(block: np.ndarray) -> np.ndarray:
    return 255 - block


@register_kernel("gain", cycles_per_pixel=2.0)
def _gain(block: np.ndarray, *, factor: float = 1.0, bias: float = 0.0) -> np.ndarray:
    out = block.astype(np.float32) * float(factor) + float(bias)
    return np.clip(out, 0, 255).astype(block.dtype)


@register_kernel("binarize", cycles_per_pixel=1.5)
def _binarize(block: np.ndarray, *, threshold: float = 128.0) -> np.ndarray:
    return np.where(block >= threshold, 255, 0).astype(block.dtype)


@register_kernel("edge", cycles_per_pixel=6.0)
def _edge(block: np.ndarray, top: np.ndarray, bottom: np.ndarray) -> np.ndarray:
    """Vertical-gradient magnitude stencil (1 halo row each side)."""
    padded = np.vstack([top, block, bottom]).astype(np.int32)
    grad = np.abs(padded[2:] - padded[:-2]) // 2
    return np.clip(grad, 0, 255).astype(block.dtype)


# -- skeleton components ----------------------------------------------------------


def _plane_geometry(instance: ComponentInstance) -> tuple[int, int]:
    try:
        return int(instance.params["width"]), int(instance.params["height"])
    except KeyError:
        raise ComponentError(
            f"skeleton {instance.instance_id!r} needs width/height params"
        ) from None


def _kernel_kwargs(component: Component) -> dict:
    """Forward everything except the skeleton's own structural params."""
    reserved = {"kernel", "width", "height", "halo"}
    return {
        k: v for k, v in component.params.items() if k not in reserved
    }


class MapPlane(Component):
    """Map skeleton: element-wise/row-local kernel over a plane slice."""

    ports = PortSpec(
        inputs=("input",),
        outputs=("output",),
        required_params=("width", "height", "kernel"),
        open_params=True,  # kernel-specific parameters pass through
        formats={
            "input": "kind=plane shape=height,width dtype=?T colorspace=?c",
            "output": "kind=plane shape=height,width dtype=?T colorspace=?c",
        },
    )

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _plane_geometry(instance)
        _, cpp = kernel(str(instance.params["kernel"]))
        frac = 1.0 / instance.slice[1] if instance.slice else 1.0
        pixels = w * h * frac
        return JobCost(
            compute_cycles=cpp * pixels,
            traffic=(
                PortTraffic("input", int(pixels), False),
                PortTraffic("output", int(pixels), True),
            ),
        )

    def run(self, job: JobContext) -> None:
        src: np.ndarray = job.read("input")
        fn, _ = kernel(str(self.require_param("kernel")))
        out = job.buffer("output", lambda: np.empty_like(src))
        index, total = self.slice if self.slice else (0, 1)
        lo, hi = slice_rows(src.shape[0], index, total)
        out[lo:hi] = fn(src[lo:hi], **_kernel_kwargs(self))
        job.note_written((hi - lo) * src.shape[1])


class StencilPlane(Component):
    """Stencil skeleton: kernel sees ``halo`` rows above/below its slice.

    Use inside ``shape="crossdep"`` parblocks so the i-1/i/i+1
    dependencies cover the halo, exactly like the blur's vertical phase.
    """

    ports = PortSpec(
        inputs=("input",),
        outputs=("output",),
        required_params=("width", "height", "kernel"),
        optional_params=("halo",),
        open_params=True,
        formats={
            "input": "kind=plane shape=height,width dtype=?T colorspace=?c",
            "output": "kind=plane shape=height,width dtype=?T colorspace=?c",
        },
    )

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _plane_geometry(instance)
        _, cpp = kernel(str(instance.params["kernel"]))
        halo = int(instance.params.get("halo", 1))
        frac = 1.0 / instance.slice[1] if instance.slice else 1.0
        pixels = w * h * frac
        halo_bytes = 2 * halo * w if instance.slice else 0
        return JobCost(
            compute_cycles=cpp * pixels,
            traffic=(
                PortTraffic("input", int(pixels + halo_bytes), False),
                PortTraffic("output", int(pixels), True),
            ),
        )

    def run(self, job: JobContext) -> None:
        src: np.ndarray = job.read("input")
        fn, _ = kernel(str(self.require_param("kernel")))
        halo = int(self.param("halo", 1))
        out = job.buffer("output", lambda: np.empty_like(src))
        index, total = self.slice if self.slice else (0, 1)
        h = src.shape[0]
        lo, hi = slice_rows(h, index, total)
        top = src[max(lo - halo, 0):lo]
        bottom = src[hi:min(hi + halo, h)]
        # replicate edges at the image border so every block sees a full halo
        if top.shape[0] < halo:
            top = np.vstack([src[0:1]] * (halo - top.shape[0]) + [top]) \
                if top.size else np.repeat(src[0:1], halo, axis=0)
        if bottom.shape[0] < halo:
            pad = halo - bottom.shape[0]
            bottom = np.vstack([bottom] + [src[h - 1:h]] * pad) \
                if bottom.size else np.repeat(src[h - 1:h], halo, axis=0)
        out[lo:hi] = fn(src[lo:hi], top, bottom, **_kernel_kwargs(self))
        job.note_written((hi - lo) * src.shape[1])


_REDUCE_OPS = {
    "mean": lambda p: float(np.mean(p)),
    "max": lambda p: float(np.max(p)),
    "min": lambda p: float(np.min(p)),
    "sum": lambda p: float(np.sum(p)),
}


class ReducePlane(Component):
    """Reduce skeleton: plane -> scalar per frame."""

    ports = PortSpec(
        inputs=("input",),
        outputs=("output",),
        required_params=("width", "height", "op"),
        formats={
            "input": "kind=plane shape=height,width dtype=?T colorspace=?c",
            "output": "kind=scalar",
        },
    )

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _plane_geometry(instance)
        return JobCost(
            compute_cycles=1.0 * w * h,
            traffic=(PortTraffic("input", w * h, False),),
        )

    def run(self, job: JobContext) -> None:
        op_name = str(self.require_param("op"))
        try:
            op = _REDUCE_OPS[op_name]
        except KeyError:
            raise ComponentError(
                f"unknown reduce op {op_name!r}; expected {sorted(_REDUCE_OPS)}"
            ) from None
        job.write("output", op(job.read("input")))


class Monitor(Component):
    """Reduce + event: reacts to special input values (paper §2.3b).

    Passes its input through unchanged; when the reduced metric crosses
    ``threshold`` (in the configured ``direction``), posts ``event`` to
    ``queue`` — e.g. a scene-change detector enabling a denoise option.
    Only *crossings* post, not every frame beyond the threshold.
    """

    ports = PortSpec(
        inputs=("input",),
        outputs=("output",),
        required_params=("width", "height", "op", "threshold", "queue",
                         "event"),
        optional_params=("direction",),
        formats={
            "input": "kind=plane shape=height,width dtype=?T colorspace=?c",
            "output": "kind=plane shape=height,width dtype=?T colorspace=?c",
        },
    )

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _plane_geometry(instance)
        return JobCost(
            compute_cycles=1.2 * w * h,
            traffic=(
                PortTraffic("input", w * h, False),
                PortTraffic("output", w * h, True),
            ),
        )

    def __init__(self, instance: ComponentInstance) -> None:
        super().__init__(instance)
        self._above: bool | None = None

    def run(self, job: JobContext) -> None:
        plane = job.read("input")
        job.write("output", plane)
        op = _REDUCE_OPS[str(self.require_param("op"))]
        value = op(plane)
        threshold = float(self.require_param("threshold"))
        direction = str(self.param("direction", "above"))
        above = value >= threshold
        crossed = (
            self._above is not None
            and above != self._above
            and (above if direction == "above" else not above)
        )
        self._above = above
        if crossed:
            job.post_event(
                str(self.require_param("queue")),
                str(self.require_param("event")),
                payload=value,
            )


SKELETON_REGISTRY: dict[str, type[Component]] = {
    "map_plane": MapPlane,
    "stencil_plane": StencilPlane,
    "reduce_plane": ReducePlane,
    "monitor": Monitor,
}
