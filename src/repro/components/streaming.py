"""Hinch components for the paper's applications (Fig. 7 vocabulary).

Each component couples three things:

* a ``ports`` declaration consumed by the XSPCL validator;
* a ``run`` implementation on real data (numpy planes / mini-JPEG
  bitstreams) used by the threaded runtime and ``execute=True``
  simulations;
* a ``cost_profile`` used by the SpaceCAKE simulator — cycles derived
  from the work the component performs (per-pixel kernels, per-byte
  entropy decoding) and per-port byte traffic in *model bytes* (e.g.
  coefficients count 2 B/sample as an int16 implementation would,
  regardless of the float64 numpy arrays Python actually holds).

Data-parallel components process the horizontal slice their
``(index, n)`` assignment selects; all copies share the whole-frame
stream buffers (DESIGN.md §6).  Fused variants (``downscale_blend``,
``idct_downscale_blend``) implement the hand-written sequential baselines
of paper §4.1 — same math, no intermediate stream.

Cost constants are class attributes (``CYCLES_PER_PIXEL`` etc.) so the
ablation benchmarks can subclass/patch them.
"""

from __future__ import annotations

import numpy as np

from repro.components import filters
from repro.components.jpeg import codec as jpeg_codec
from repro.components.video import Frame, synthetic_frame
from repro.core.ports import PortSpec
from repro.core.program import ComponentInstance
from repro.errors import ComponentError
from repro.hinch.component import Component, JobContext
from repro.spacecake.costmodel import JobCost, PortTraffic

__all__ = [
    "VideoSource",
    "LumaSource",
    "MjpegSource",
    "JpegDecode",
    "IdctField",
    "DownscaleField",
    "DownscaleFieldStrided",
    "BlendField",
    "BlurHField",
    "BlurVField",
    "ConvertPlane",
    "VideoSink",
    "PlaneSink",
    "TimerSource",
    "DownscaleBlendField",
    "IdctDownscaleBlendField",
    "field_dims",
]

#: model bytes per DCT coefficient sample (int16 in a real decoder)
COEFF_BYTES = 2


def field_dims(width: int, height: int, field: str) -> tuple[int, int]:
    """Plane dimensions of one YUV 4:2:0 field of a width x height frame."""
    if field == "y":
        return width, height
    if field in ("u", "v"):
        return width // 2, height // 2
    raise ComponentError(f"unknown field {field!r}")


def _geometry(instance: ComponentInstance) -> tuple[int, int]:
    try:
        return int(instance.params["width"]), int(instance.params["height"])
    except KeyError:
        raise ComponentError(
            f"component {instance.instance_id!r} needs width/height params "
            "for its cost profile"
        ) from None


def _slice_fraction(instance: ComponentInstance) -> float:
    if instance.slice is None:
        return 1.0
    return 1.0 / instance.slice[1]


class _SlicedMixin:
    """Helper for components operating on a horizontal slice of rows."""

    slice: tuple[int, int] | None

    def rows(self, height: int, *, block: int = 1) -> tuple[int, int]:
        """This copy's row range over ``height`` rows, ``block``-aligned."""
        if self.slice is None:
            return 0, height
        index, total = self.slice
        if height % block:
            raise ComponentError(
                f"height {height} not divisible by block {block}"
            )
        units = height // block
        lo, hi = filters.slice_rows(units, index, total)
        return lo * block, hi * block


def _instance_rows(
    instance: ComponentInstance, height: int, *, block: int = 1
) -> tuple[int, int] | None:
    """Build-time twin of :meth:`_SlicedMixin.rows` over a descriptor.

    Used by the ``writes_rows``/``reads_rows`` access contracts, which the
    chain-fusion compiler evaluates before any component object exists.
    Returns ``None`` instead of raising when the height does not divide.
    """
    if instance.slice is None:
        return 0, height
    if height % block:
        return None
    index, total = instance.slice
    units = height // block
    lo, hi = filters.slice_rows(units, index, total)
    return lo * block, hi * block


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------


class VideoSource(Component):
    """Reads an 'uncompressed video file': synthesizes deterministic frames.

    Outputs the three fields on separate ports so downstream per-field
    components form the task-parallel color pipelines of paper Fig. 7.
    """

    ports = PortSpec(
        outputs=("y", "u", "v"),
        required_params=("width", "height"),
        optional_params=("seed", "detail", "motion", "frames"),
        formats={
            "y": "kind=plane shape=height,width dtype=uint8 colorspace=y",
            "u": "kind=plane shape=height/2,width/2 dtype=uint8 colorspace=u",
            "v": "kind=plane shape=height/2,width/2 dtype=uint8 colorspace=v",
        },
    )
    READ_CYCLES_PER_BYTE = 0.4  # DMA-in from the file/capture device

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)
        nbytes = w * h + 2 * (w // 2) * (h // 2)
        return JobCost(
            compute_cycles=cls.READ_CYCLES_PER_BYTE * nbytes,
            traffic=(
                PortTraffic("y", w * h, True),
                PortTraffic("u", (w // 2) * (h // 2), True),
                PortTraffic("v", (w // 2) * (h // 2), True),
            ),
        )

    def __init__(self, instance: ComponentInstance) -> None:
        super().__init__(instance)
        self._cache: dict[int, Frame] = {}

    def _frame(self, index: int) -> Frame:
        limit = self.param("frames")
        if limit is not None:
            index %= int(limit)  # loop the clip, like a looping test file
        frame = self._cache.get(index)
        if frame is None:
            frame = synthetic_frame(
                index,
                int(self.require_param("width")),
                int(self.require_param("height")),
                seed=int(self.param("seed", 0)),
                detail=float(self.param("detail", 0.5)),
                motion=int(self.param("motion", 4)),
            )
            self._cache[index] = frame
        return frame

    def run(self, job: JobContext) -> None:
        frame = self._frame(job.iteration)
        job.write("y", frame.y)
        job.write("u", frame.u)
        job.write("v", frame.v)


class LumaSource(VideoSource):
    """Single-plane source: the Blur application's luminance input."""

    ports = PortSpec(
        outputs=("output",),
        required_params=("width", "height"),
        optional_params=("seed", "detail", "motion", "frames"),
        formats={
            "output": "kind=plane shape=height,width dtype=uint8 colorspace=y",
        },
    )

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)
        return JobCost(
            compute_cycles=cls.READ_CYCLES_PER_BYTE * w * h,
            traffic=(PortTraffic("output", w * h, True),),
        )

    def run(self, job: JobContext) -> None:
        job.write("output", self._frame(job.iteration).y)


class MjpegSource(Component):
    """Reads an 'MJPEG file': synthesizes and encodes frames on demand."""

    ports = PortSpec(
        outputs=("output",),
        required_params=("width", "height"),
        optional_params=("seed", "detail", "motion", "frames", "quality", "ratio"),
        formats={"output": "kind=bitstream"},
    )
    READ_CYCLES_PER_BYTE = 0.4
    #: assumed compression ratio (compressed/raw) for the cost profile
    DEFAULT_RATIO = 0.12

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)
        raw = w * h + 2 * (w // 2) * (h // 2)
        ratio = float(instance.params.get("ratio", cls.DEFAULT_RATIO))
        compressed = int(raw * ratio)
        return JobCost(
            compute_cycles=cls.READ_CYCLES_PER_BYTE * compressed,
            traffic=(PortTraffic("output", compressed, True),),
        )

    def __init__(self, instance: ComponentInstance) -> None:
        super().__init__(instance)
        self._cache: dict[int, jpeg_codec.EncodedFrame] = {}
        #: per-index (field, zz, qtable, w, h) tuples for the fused
        #: source+decode kernel; int32 zigzag coefficients, not decoded
        #: planes, so memory stays near the compressed-frame cache
        self._zz_cache: dict[int, tuple] = {}

    def frame_index(self, iteration: int) -> int:
        """Source frame index for one iteration (``frames`` wraps)."""
        limit = self.param("frames")
        if limit is not None:
            return iteration % int(limit)
        return iteration

    def _synthesize(self, index: int):
        return synthetic_frame(
            index,
            int(self.require_param("width")),
            int(self.require_param("height")),
            seed=int(self.param("seed", 0)),
            detail=float(self.param("detail", 0.5)),
            motion=int(self.param("motion", 4)),
        )

    def run(self, job: JobContext) -> None:
        index = self.frame_index(job.iteration)
        encoded = self._cache.get(index)
        if encoded is None:
            encoded = jpeg_codec.encode_frame(
                self._synthesize(index),
                quality=int(self.param("quality", 75)),
            )
            self._cache[index] = encoded
        job.write("output", encoded)

    def transcoded_coefficients(
        self, iteration: int, backend: str = "numpy"
    ) -> dict[str, jpeg_codec.PlaneCoefficients]:
        """Decoded coefficients without the Huffman round-trip.

        Bit-identical to ``entropy_decode_frame(encode_frame(frame))``
        (see :func:`~repro.components.jpeg.codec.coefficients_from_zigzag`);
        only the int32 zigzag stage is cached, and each call materializes
        fresh dequantized blocks — exactly the allocation behaviour of
        the real decoder, so downstream consumers see equivalent objects.
        """
        index = self.frame_index(iteration)
        entry = self._zz_cache.get(index)
        if entry is None:
            frame = self._synthesize(index)
            quality = int(self.param("quality", 75))
            luma_q = jpeg_codec.scale_qtable(jpeg_codec.LUMA_QTABLE, quality)
            chroma_q = jpeg_codec.scale_qtable(
                jpeg_codec.CHROMA_QTABLE, quality
            )
            entry = tuple(
                (field, jpeg_codec.quantize_plane(plane, qtable,
                                                  backend=backend),
                 qtable, plane.shape[1], plane.shape[0])
                for field, plane, qtable in (
                    ("y", frame.y, luma_q),
                    ("u", frame.u, chroma_q),
                    ("v", frame.v, chroma_q),
                )
            )
            self._zz_cache[index] = entry
        return {
            field: jpeg_codec.coefficients_from_zigzag(
                zz, qtable, width=w, height=h
            )
            for field, zz, qtable, w, h in entry
        }


class TimerSource(Component):
    """Portless control component posting an event every ``period`` iters.

    Stands in for the user pressing a key; ``always_execute`` makes it
    drive reconfiguration experiments in cost-only simulations too.
    """

    ports = PortSpec(
        required_params=("queue", "period", "event"),
        optional_params=("offset",),
    )
    always_execute = True

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        return JobCost(compute_cycles=100.0)

    def run(self, job: JobContext) -> None:
        period = int(self.require_param("period"))
        offset = int(self.param("offset", 0))
        k = job.iteration - offset
        if k >= 0 and (k + 1) % period == 0:
            job.post_event(
                str(self.require_param("queue")), str(self.require_param("event"))
            )


# ---------------------------------------------------------------------------
# JPEG pipeline stages
# ---------------------------------------------------------------------------


class JpegDecode(Component):
    """Entropy decode: bitstream -> dequantized coefficients per field.

    Inherently serial (bit-level Huffman), hence never sliced — the paper
    parallelizes only the IDCT and later stages.
    """

    ports = PortSpec(
        inputs=("input",),
        outputs=("coeffs_y", "coeffs_u", "coeffs_v"),
        required_params=("width", "height"),
        optional_params=("ratio",),
        formats={
            "input": "kind=bitstream",
            "coeffs_y": "kind=coeffs shape=height,width colorspace=y",
            "coeffs_u": "kind=coeffs shape=height/2,width/2 colorspace=u",
            "coeffs_v": "kind=coeffs shape=height/2,width/2 colorspace=v",
        },
    )
    CYCLES_PER_COMPRESSED_BYTE = 55.0  # serial Huffman + RLE + dequant

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)
        raw = w * h + 2 * (w // 2) * (h // 2)
        ratio = float(instance.params.get("ratio", MjpegSource.DEFAULT_RATIO))
        compressed = int(raw * ratio)
        return JobCost(
            compute_cycles=cls.CYCLES_PER_COMPRESSED_BYTE * compressed,
            traffic=(
                PortTraffic("input", compressed, False),
                PortTraffic("coeffs_y", w * h * COEFF_BYTES, True),
                PortTraffic("coeffs_u", (w // 2) * (h // 2) * COEFF_BYTES, True),
                PortTraffic("coeffs_v", (w // 2) * (h // 2) * COEFF_BYTES, True),
            ),
        )

    def run(self, job: JobContext) -> None:
        encoded: jpeg_codec.EncodedFrame = job.read("input")
        coeffs = jpeg_codec.entropy_decode_frame(encoded)
        job.write("coeffs_y", coeffs["y"])
        job.write("coeffs_u", coeffs["u"])
        job.write("coeffs_v", coeffs["v"])

    @classmethod
    def compile_fused_pair(
        cls,
        upstream_cls: type[Component],
        upstream: ComponentInstance,
        instance: ComponentInstance,
        backend: str,
    ):
        """Fused source+decode: skip the Huffman round-trip entirely.

        When the upstream chain member is the MJPEG source, the
        bitstream between them is chain-internal and provably a lossless
        detour — canonical Huffman, RLE and DC prediction invert exactly
        on the int32 zigzag coefficients — so the combined kernel goes
        pixels -> DCT -> quantize -> dequantize directly
        (:meth:`MjpegSource.transcoded_coefficients`), bit-identical to
        encode-then-entropy-decode at a fraction of the work.
        """
        if not issubclass(upstream_cls, MjpegSource):
            return None

        def kernel(source, decode, src_job, job):
            coeffs = source.transcoded_coefficients(
                src_job.iteration, backend
            )
            job.write("coeffs_y", coeffs["y"])
            job.write("coeffs_u", coeffs["u"])
            job.write("coeffs_v", coeffs["v"])

        return kernel


class IdctField(Component, _SlicedMixin):
    """IDCT of one field; data-parallel over block-aligned row slices."""

    ports = PortSpec(
        inputs=("coeffs",),
        outputs=("output",),
        required_params=("width", "height"),
        formats={
            "coeffs": "kind=coeffs shape=height,width colorspace=?c",
            "output": "kind=plane shape=height,width dtype=uint8 "
                      "colorspace=?c block=8",
        },
    )
    CYCLES_PER_PIXEL = 10.0  # 8x8 IDCT amortized per pixel

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)
        frac = _slice_fraction(instance)
        pixels = w * h * frac
        return JobCost(
            compute_cycles=cls.CYCLES_PER_PIXEL * pixels,
            traffic=(
                PortTraffic("coeffs", int(pixels * COEFF_BYTES), False),
                PortTraffic("output", int(pixels), True),
            ),
        )

    @classmethod
    def writes_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        if port == "output":
            return _instance_rows(instance, height, block=8)
        return super().writes_rows(instance, port, height)

    def run(self, job: JobContext) -> None:
        coeffs: jpeg_codec.PlaneCoefficients = job.read("coeffs")
        out = job.buffer(
            "output", shape=(coeffs.height, coeffs.width), dtype=np.uint8
        )
        lo, hi = self.rows(coeffs.height, block=8)
        jpeg_codec.idct_plane(coeffs, rows=(lo, hi), out=out)
        job.note_written((hi - lo) * coeffs.width)


# ---------------------------------------------------------------------------
# Pixel filters
# ---------------------------------------------------------------------------


class DownscaleField(Component, _SlicedMixin):
    """Spatial down scaler of one plane (paper Fig. 2's example)."""

    ports = PortSpec(
        inputs=("input",),
        outputs=("output",),
        required_params=("width", "height", "factor"),
        formats={
            "input": "kind=plane shape=height,width dtype=?T colorspace=?c",
            "output": "kind=plane shape=height/factor,width/factor "
                      "dtype=?T colorspace=?c",
        },
    )
    CYCLES_PER_INPUT_PIXEL = 3.0  # box accumulate + divide

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)  # input plane geometry
        factor = int(instance.params["factor"])
        frac = _slice_fraction(instance)
        in_px = w * h * frac
        out_px = in_px / (factor * factor)
        return JobCost(
            compute_cycles=cls.CYCLES_PER_INPUT_PIXEL * in_px,
            traffic=(
                PortTraffic("input", int(in_px), False),
                PortTraffic("output", int(out_px), True),
            ),
        )

    @classmethod
    def writes_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        if port == "output":
            return _instance_rows(instance, height)
        return super().writes_rows(instance, port, height)

    @classmethod
    def reads_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        if port == "input":
            # The box filter reads exactly the input band that maps onto
            # this copy's output rows: [lo*factor, hi*factor).
            factor = int(instance.params["factor"])
            span = _instance_rows(instance, height // factor)
            if span is None:
                return None
            return span[0] * factor, span[1] * factor
        return super().reads_rows(instance, port, height)

    def run(self, job: JobContext) -> None:
        src: np.ndarray = job.read("input")
        factor = int(self.require_param("factor"))
        h, w = src.shape
        oh = h // factor
        out = job.buffer("output", shape=(oh, w // factor), dtype=src.dtype)
        lo, hi = self.rows(oh)
        filters.downscale_plane(src, factor, out=out, rows=(lo, hi))
        job.note_written((hi - lo) * (w // factor))


class DownscaleFieldStrided(DownscaleField):
    """Alternative ``downscale_field`` implementation: strided accumulation.

    Sums each factor x factor box one strided view at a time instead of
    one big reshape — the loop structure a CE DSP streaming row-by-row
    would use.  Same integer math as the reference implementation, so the
    output is bit-identical; registered as impl ``strided`` of the
    ``downscale_field`` family.
    """

    def run(self, job: JobContext) -> None:
        src: np.ndarray = job.read("input")
        factor = int(self.require_param("factor"))
        h, w = src.shape
        oh, ow = h // factor, w // factor
        out = job.buffer("output", shape=(oh, ow), dtype=src.dtype)
        lo, hi = self.rows(oh)
        acc = np.zeros((hi - lo, ow), dtype=np.uint32)
        for dr in range(factor):
            for dc in range(factor):
                acc += src[lo * factor + dr : hi * factor : factor, dc::factor]
        out[lo:hi] = (acc // (factor * factor)).astype(src.dtype)
        job.note_written((hi - lo) * ow)


class BlendField(Component, _SlicedMixin):
    """Picture-in-picture blender for one plane.

    Supports the paper's example reconfiguration: "a picture-in-picture
    blender can support changing the position of the blended picture"
    (request ``pos=row,col``).
    """

    ports = PortSpec(
        inputs=("background", "overlay"),
        outputs=("output",),
        required_params=("width", "height"),
        optional_params=("pos_row", "pos_col", "alpha", "overlay_width",
                         "overlay_height"),
        formats={
            "background": "kind=plane shape=height,width dtype=?T "
                          "colorspace=?c",
            "overlay": "kind=plane shape=overlay_height,overlay_width "
                       "dtype=?T colorspace=?c",
            "output": "kind=plane shape=height,width dtype=?T colorspace=?c",
        },
    )
    CYCLES_PER_PIXEL = 1.5  # copy + conditional overlay write

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)  # background/output geometry
        frac = _slice_fraction(instance)
        bg_px = w * h * frac
        ow = int(instance.params.get("overlay_width", w // 4))
        oh = int(instance.params.get("overlay_height", h // 4))
        ov_px = ow * oh * frac
        return JobCost(
            compute_cycles=cls.CYCLES_PER_PIXEL * bg_px,
            traffic=(
                PortTraffic("background", int(bg_px), False),
                PortTraffic("overlay", int(ov_px), False),
                PortTraffic("output", int(bg_px), True),
            ),
        )

    @classmethod
    def writes_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        if port == "output":
            return _instance_rows(instance, height)
        return super().writes_rows(instance, port, height)

    @classmethod
    def reads_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        if port == "background":
            # blend_plane copies background[lo:hi] and overlays only the
            # intersection with that band — the slice reads nothing else.
            return _instance_rows(instance, height)
        # The overlay lands at a reconfigurable position: a sliced copy may
        # read any of its rows, so no contract (fusion keeps it external).
        return super().reads_rows(instance, port, height)

    def _position(self) -> tuple[int, int]:
        pos = self.param("pos")
        if pos is not None:  # set via reconfiguration request "pos=r,c"
            row_s, _, col_s = str(pos).partition(",")
            return int(row_s), int(col_s)
        return int(self.param("pos_row", 0)), int(self.param("pos_col", 0))

    def run(self, job: JobContext) -> None:
        background: np.ndarray = job.read("background")
        overlay: np.ndarray = job.read("overlay")
        out = job.buffer("output", shape=background.shape, dtype=background.dtype)
        lo, hi = self.rows(background.shape[0])
        filters.blend_plane(
            background,
            overlay,
            self._position(),
            out=out,
            rows=(lo, hi),
            alpha=float(self.param("alpha", 1.0)),
        )
        job.note_written((hi - lo) * background.shape[1])


class ConvertPlane(Component, _SlicedMixin):
    """Dtype bridge between mismatched plane formats (X504's named fix).

    Casts its input plane to the ``dtype`` parameter, optionally
    pre-multiplying by ``scale`` — the converter the reconciliation pass
    suggests for lossy-but-convertible dtype mismatches.  Preserves the
    plane geometry and colorspace.
    """

    ports = PortSpec(
        inputs=("input",),
        outputs=("output",),
        required_params=("dtype",),
        optional_params=("scale", "width", "height"),
        formats={
            "input": "kind=plane shape=?h,?w colorspace=?c",
            "output": "kind=plane shape=?h,?w dtype=dtype colorspace=?c",
        },
    )
    CYCLES_PER_PIXEL = 1.0  # cast + optional multiply

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w = int(instance.params.get("width", 0))
        h = int(instance.params.get("height", 0))
        pixels = w * h * _slice_fraction(instance)
        return JobCost(
            compute_cycles=cls.CYCLES_PER_PIXEL * pixels,
            traffic=(
                PortTraffic("input", int(pixels), False),
                PortTraffic("output", int(pixels), True),
            ),
        )

    @classmethod
    def writes_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        if port == "output":
            return _instance_rows(instance, height)
        return super().writes_rows(instance, port, height)

    @classmethod
    def reads_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        if port == "input":
            return _instance_rows(instance, height)
        return super().reads_rows(instance, port, height)

    @classmethod
    def compile_fused(cls, instance: ComponentInstance, backend: str):
        if backend != "numba":
            return None
        try:
            import numba
        except Exception:
            return None
        try:
            kernel = numba.njit(cache=False)(_convert_band)
        except Exception:
            return None

        def run(component: "ConvertPlane", job: JobContext) -> None:
            src: np.ndarray = job.read("input")
            dtype = np.dtype(str(component.require_param("dtype")))
            out = job.buffer("output", shape=src.shape, dtype=dtype)
            lo, hi = component.rows(src.shape[0])
            scale = component.param("scale")
            use_scale = scale is not None
            kernel(src, out, lo, hi,
                   float(scale) if use_scale else 1.0, use_scale)
            job.note_written((hi - lo) * src.shape[1])

        return run

    def run(self, job: JobContext) -> None:
        src: np.ndarray = job.read("input")
        dtype = np.dtype(str(self.require_param("dtype")))
        out = job.buffer("output", shape=src.shape, dtype=dtype)
        lo, hi = self.rows(src.shape[0])
        scale = self.param("scale")
        view = src[lo:hi]
        if scale is not None:
            view = view * float(scale)
        np.copyto(out[lo:hi], view, casting="unsafe")
        job.note_written((hi - lo) * src.shape[1])


def _convert_band(src, out, lo, hi, scale, use_scale):
    """Loop-style dtype conversion kernel, njit-compilable as-is.

    Elementwise C-cast assignment matches the reference implementation's
    ``np.copyto(..., casting="unsafe")`` bit-for-bit, with and without the
    float pre-multiply.
    """
    for r in range(lo, hi):
        for c in range(src.shape[1]):
            if use_scale:
                out[r, c] = src[r, c] * scale
            else:
                out[r, c] = src[r, c]


class _BlurBase(Component, _SlicedMixin):
    ports = PortSpec(
        inputs=("input",),
        outputs=("output",),
        required_params=("width", "height", "size"),
        optional_params=("sigma",),
        formats={
            "input": "kind=plane shape=height,width dtype=?T colorspace=?c",
            "output": "kind=plane shape=height,width dtype=?T colorspace=?c",
        },
    )
    CYCLES_PER_TAP_PIXEL = 2.0  # multiply-accumulate per kernel tap

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)
        size = int(instance.params["size"])
        frac = _slice_fraction(instance)
        pixels = w * h * frac
        halo_rows = size // 2
        halo_bytes = 2 * halo_rows * w if instance.slice else 0
        return JobCost(
            compute_cycles=cls.CYCLES_PER_TAP_PIXEL * size * pixels,
            traffic=(
                PortTraffic("input", int(pixels + halo_bytes), False),
                PortTraffic("output", int(pixels), True),
            ),
        )

    def _kernel(self) -> np.ndarray:
        return filters.gaussian_kernel_1d(
            int(self.require_param("size")), float(self.param("sigma", 1.0))
        )

    @classmethod
    def writes_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        if port == "output":
            return _instance_rows(instance, height)
        return super().writes_rows(instance, port, height)


class BlurHField(_BlurBase):
    """Horizontal phase of the separable Gaussian blur."""

    @classmethod
    def reads_rows(
        cls, instance: ComponentInstance, port: str, height: int
    ) -> tuple[int, int] | None:
        # Horizontal taps stay within the row; only the vertical phase
        # reads a halo (and therefore inherits the None default).
        if port == "input":
            return _instance_rows(instance, height)
        return super().reads_rows(instance, port, height)

    def run(self, job: JobContext) -> None:
        src: np.ndarray = job.read("input")
        out = job.buffer("output", shape=src.shape, dtype=src.dtype)
        lo, hi = self.rows(src.shape[0])
        filters.blur_plane_horizontal(src, self._kernel(), out=out, rows=(lo, hi))
        job.note_written((hi - lo) * src.shape[1])


class BlurVField(_BlurBase):
    """Vertical phase: reads a halo around its slice, hence crossdep."""

    def run(self, job: JobContext) -> None:
        src: np.ndarray = job.read("input")
        out = job.buffer("output", shape=src.shape, dtype=src.dtype)
        lo, hi = self.rows(src.shape[0])
        filters.blur_plane_vertical(src, self._kernel(), out=out, rows=(lo, hi))
        job.note_written((hi - lo) * src.shape[1])


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class VideoSink(Component):
    """Writes the output video 'file'; optionally retains frames."""

    ports = PortSpec(
        inputs=("y", "u", "v"),
        required_params=("width", "height"),
        optional_params=("collect",),
        formats={
            "y": "kind=plane shape=height,width dtype=uint8 colorspace=y",
            "u": "kind=plane shape=height/2,width/2 dtype=uint8 colorspace=u",
            "v": "kind=plane shape=height/2,width/2 dtype=uint8 colorspace=v",
        },
    )
    WRITE_CYCLES_PER_BYTE = 0.4

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)
        return JobCost(
            compute_cycles=cls.WRITE_CYCLES_PER_BYTE
            * (w * h + 2 * (w // 2) * (h // 2)),
            traffic=(
                PortTraffic("y", w * h, False),
                PortTraffic("u", (w // 2) * (h // 2), False),
                PortTraffic("v", (w // 2) * (h // 2), False),
            ),
        )

    def __init__(self, instance: ComponentInstance) -> None:
        super().__init__(instance)
        self.frames: list[tuple[int, Frame]] = []
        self.frames_written = 0

    def run(self, job: JobContext) -> None:
        frame = Frame(
            np.ascontiguousarray(job.read("y")),
            np.ascontiguousarray(job.read("u")),
            np.ascontiguousarray(job.read("v")),
        )
        self.frames_written += 1
        if self.param("collect"):
            # Input planes may be views into recycled pool / shared-memory
            # planes that are overwritten a few iterations later — retained
            # frames must own their pixels.
            self.frames.append((job.iteration, frame.copy()))

    def ordered_frames(self) -> list[Frame]:
        return [f for _, f in sorted(self.frames, key=lambda kv: kv[0])]

    def snapshot_state(self) -> tuple[int, list[tuple[int, Frame]]]:
        return self.frames_written, self.frames

    def merge_state(self, state: tuple[int, list[tuple[int, Frame]]]) -> None:
        written, frames = state
        self.frames_written += written
        self.frames.extend(frames)

    def checkpoint_state(self) -> tuple[int, list[tuple[int, Frame]]] | None:
        if not self.frames_written and not self.frames:
            return None
        state = (self.frames_written, self.frames)
        self.frames_written = 0
        self.frames = []
        return state


class PlaneSink(Component):
    """Single-plane sink (the Blur application's output)."""

    ports = PortSpec(
        inputs=("input",),
        required_params=("width", "height"),
        optional_params=("collect",),
        formats={
            "input": "kind=plane shape=height,width dtype=uint8 colorspace=?c",
        },
    )
    WRITE_CYCLES_PER_BYTE = 0.4

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)
        return JobCost(
            compute_cycles=cls.WRITE_CYCLES_PER_BYTE * w * h,
            traffic=(PortTraffic("input", w * h, False),),
        )

    def __init__(self, instance: ComponentInstance) -> None:
        super().__init__(instance)
        self.planes: list[tuple[int, np.ndarray]] = []
        self.frames_written = 0

    def run(self, job: JobContext) -> None:
        plane = job.read("input")
        self.frames_written += 1
        if self.param("collect"):
            self.planes.append((job.iteration, plane.copy()))

    def ordered_planes(self) -> list[np.ndarray]:
        return [p for _, p in sorted(self.planes, key=lambda kv: kv[0])]

    def snapshot_state(self) -> tuple[int, list[tuple[int, np.ndarray]]]:
        return self.frames_written, self.planes

    def merge_state(self, state: tuple[int, list[tuple[int, np.ndarray]]]) -> None:
        written, planes = state
        self.frames_written += written
        self.planes.extend(planes)

    def checkpoint_state(self) -> tuple[int, list[tuple[int, np.ndarray]]] | None:
        if not self.frames_written and not self.planes:
            return None
        state = (self.frames_written, self.planes)
        self.frames_written = 0
        self.planes = []
        return state


# ---------------------------------------------------------------------------
# Fused components — the hand-written sequential baselines (paper §4.1)
# ---------------------------------------------------------------------------


class DownscaleBlendField(Component):
    """Down scale + blend in one pass: no intermediate stream.

    The PiP sequential baseline: "the sequential versions ... combine
    several operations, for example down scaling and blending, into a
    single function."
    """

    ports = PortSpec(
        inputs=("background", "overlay_hi"),
        outputs=("output",),
        required_params=("width", "height", "factor"),
        optional_params=("pos_row", "pos_col", "alpha"),
        formats={
            "background": "kind=plane shape=height,width dtype=?T "
                          "colorspace=?c",
            "overlay_hi": "kind=plane shape=*,* dtype=?T colorspace=?c",
            "output": "kind=plane shape=height,width dtype=?T colorspace=?c",
        },
    )

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)  # background geometry
        factor = int(instance.params["factor"])
        # overlay_hi is a full frame of the same geometry, scaled by factor
        in_px = w * h  # overlay input pixels
        blend_px = w * h
        compute = (
            DownscaleField.CYCLES_PER_INPUT_PIXEL * in_px
            + BlendField.CYCLES_PER_PIXEL * blend_px
        )
        return JobCost(
            compute_cycles=compute,
            traffic=(
                PortTraffic("background", w * h, False),
                PortTraffic("overlay_hi", in_px, False),
                PortTraffic("output", w * h, True),
            ),
        )

    def run(self, job: JobContext) -> None:
        background: np.ndarray = job.read("background")
        overlay_hi: np.ndarray = job.read("overlay_hi")
        factor = int(self.require_param("factor"))
        small = filters.downscale_plane(overlay_hi, factor)  # local scratch
        position = (int(self.param("pos_row", 0)), int(self.param("pos_col", 0)))
        out = filters.blend_plane(
            background, small, position, alpha=float(self.param("alpha", 1.0))
        )
        job.write("output", out)


class JpegDecodeIdct(Component):
    """Entropy decode + IDCT in one pass (sequential JPiP baseline).

    A hand-written sequential JPEG decoder IDCTs each block right after
    entropy-decoding it — coefficients live in registers/L1 and are never
    materialized as a stream, unlike the split decode -> IDCT pipeline.
    """

    ports = PortSpec(
        inputs=("input",),
        outputs=("y", "u", "v"),
        required_params=("width", "height"),
        optional_params=("ratio",),
        formats={
            "input": "kind=bitstream",
            "y": "kind=plane shape=height,width dtype=uint8 colorspace=y",
            "u": "kind=plane shape=height/2,width/2 dtype=uint8 colorspace=u",
            "v": "kind=plane shape=height/2,width/2 dtype=uint8 colorspace=v",
        },
    )

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)
        raw = w * h + 2 * (w // 2) * (h // 2)
        ratio = float(instance.params.get("ratio", MjpegSource.DEFAULT_RATIO))
        compressed = int(raw * ratio)
        compute = (
            JpegDecode.CYCLES_PER_COMPRESSED_BYTE * compressed
            + IdctField.CYCLES_PER_PIXEL * raw
        )
        return JobCost(
            compute_cycles=compute,
            traffic=(
                PortTraffic("input", compressed, False),
                PortTraffic("y", w * h, True),
                PortTraffic("u", (w // 2) * (h // 2), True),
                PortTraffic("v", (w // 2) * (h // 2), True),
            ),
        )

    def run(self, job: JobContext) -> None:
        encoded: jpeg_codec.EncodedFrame = job.read("input")
        frame = jpeg_codec.decode_frame(encoded)
        job.write("y", frame.y)
        job.write("u", frame.u)
        job.write("v", frame.v)


class IdctDownscaleBlendField(Component):
    """IDCT + down scale + blend in one pass (JPiP sequential baseline)."""

    ports = PortSpec(
        inputs=("background", "coeffs"),
        outputs=("output",),
        required_params=("width", "height", "factor", "src_width", "src_height"),
        optional_params=("pos_row", "pos_col", "alpha"),
        formats={
            "background": "kind=plane shape=height,width dtype=?T "
                          "colorspace=?c",
            "coeffs": "kind=coeffs shape=src_height,src_width",
            "output": "kind=plane shape=height,width dtype=?T colorspace=?c",
        },
    )

    @classmethod
    def cost_profile(cls, instance: ComponentInstance) -> JobCost:
        w, h = _geometry(instance)  # background/output geometry
        sw = int(instance.params["src_width"])
        sh = int(instance.params["src_height"])
        src_px = sw * sh
        compute = (
            IdctField.CYCLES_PER_PIXEL * src_px
            + DownscaleField.CYCLES_PER_INPUT_PIXEL * src_px
            + BlendField.CYCLES_PER_PIXEL * w * h
        )
        return JobCost(
            compute_cycles=compute,
            traffic=(
                PortTraffic("background", w * h, False),
                PortTraffic("coeffs", src_px * COEFF_BYTES, False),
                PortTraffic("output", w * h, True),
            ),
        )

    def run(self, job: JobContext) -> None:
        background: np.ndarray = job.read("background")
        coeffs: jpeg_codec.PlaneCoefficients = job.read("coeffs")
        plane = jpeg_codec.idct_plane(coeffs)  # local scratch, stays in cache
        factor = int(self.require_param("factor"))
        small = filters.downscale_plane(plane, factor)
        position = (int(self.param("pos_row", 0)), int(self.param("pos_col", 0)))
        out = filters.blend_plane(
            background, small, position, alpha=float(self.param("alpha", 1.0))
        )
        job.write("output", out)
