"""Planar YUV 4:2:0 video model and synthetic content generation.

The paper's applications process "uncompressed video files" (PiP, Blur)
and MJPEG files (JPiP).  We have no Philips test content, so
:func:`synthetic_clip` generates deterministic moving-pattern video with
tunable spatial detail — enough texture that JPEG entropy coding, down
scaling and blurring all do representative work (DESIGN.md §3).

A :class:`Frame` is three planes: Y at full resolution, U and V at half
resolution in both dimensions (4:2:0), dtype uint8 — the layout CE
pipelines of the era used.  The per-field components each process one
plane, which is how the applications exploit "the various color fields
in the images concurrently".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ComponentError

__all__ = ["Frame", "VideoClip", "synthetic_clip", "synthetic_frame", "psnr"]


@dataclass
class Frame:
    """One planar YUV 4:2:0 frame."""

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        for name, plane in (("y", self.y), ("u", self.u), ("v", self.v)):
            if plane.dtype != np.uint8:
                raise ComponentError(f"plane {name} must be uint8, got {plane.dtype}")
            if plane.ndim != 2:
                raise ComponentError(f"plane {name} must be 2-D, got {plane.ndim}-D")
        h, w = self.y.shape
        if self.u.shape != (h // 2, w // 2) or self.v.shape != (h // 2, w // 2):
            raise ComponentError(
                f"4:2:0 chroma must be {(h // 2, w // 2)}, got "
                f"{self.u.shape}/{self.v.shape}"
            )

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    @property
    def nbytes(self) -> int:
        return self.y.nbytes + self.u.nbytes + self.v.nbytes

    def plane(self, field: str) -> np.ndarray:
        try:
            return {"y": self.y, "u": self.u, "v": self.v}[field]
        except KeyError:
            raise ComponentError(f"unknown field {field!r}; expected y/u/v") from None

    def copy(self) -> "Frame":
        return Frame(self.y.copy(), self.u.copy(), self.v.copy())

    @classmethod
    def blank(cls, width: int, height: int, *, fill: int = 0) -> "Frame":
        if width % 2 or height % 2:
            raise ComponentError(
                f"4:2:0 frames need even dimensions, got {width}x{height}"
            )
        return cls(
            np.full((height, width), fill, dtype=np.uint8),
            np.full((height // 2, width // 2), 128, dtype=np.uint8),
            np.full((height // 2, width // 2), 128, dtype=np.uint8),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        return (
            np.array_equal(self.y, other.y)
            and np.array_equal(self.u, other.u)
            and np.array_equal(self.v, other.v)
        )


@dataclass
class VideoClip:
    """A finite sequence of frames of identical geometry."""

    frames: list[Frame]

    def __post_init__(self) -> None:
        if not self.frames:
            raise ComponentError("a clip needs at least one frame")
        w, h = self.frames[0].width, self.frames[0].height
        for i, f in enumerate(self.frames):
            if (f.width, f.height) != (w, h):
                raise ComponentError(
                    f"frame {i} is {f.width}x{f.height}, clip is {w}x{h}"
                )

    def __len__(self) -> int:
        return len(self.frames)

    def __getitem__(self, index: int) -> Frame:
        return self.frames[index]

    @property
    def width(self) -> int:
        return self.frames[0].width

    @property
    def height(self) -> int:
        return self.frames[0].height


def synthetic_clip(
    width: int,
    height: int,
    frames: int,
    *,
    seed: int = 0,
    detail: float = 0.5,
    motion: int = 4,
) -> VideoClip:
    """Deterministic moving-pattern video.

    Content: a diagonal luminance gradient + sinusoidal texture that
    scrolls ``motion`` pixels per frame, plus seeded noise scaled by
    ``detail`` (0 = smooth, 1 = noisy).  Chroma carries a slow color
    wash.  All of it is cheap to generate yet non-trivial to compress,
    which is what the JPiP decode stage needs to be representative.
    """
    if frames < 1:
        raise ComponentError(f"need at least 1 frame, got {frames}")
    return VideoClip(
        [
            synthetic_frame(k, width, height, seed=seed, detail=detail,
                            motion=motion)
            for k in range(frames)
        ]
    )


def synthetic_frame(
    index: int,
    width: int,
    height: int,
    *,
    seed: int = 0,
    detail: float = 0.5,
    motion: int = 4,
) -> Frame:
    """Frame ``index`` of the synthetic clip (frames are independent)."""
    if width % 2 or height % 2:
        raise ComponentError(f"need even dimensions, got {width}x{height}")
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    base = (xx * 0.7 + yy * 0.3) % 256
    texture = 32.0 * np.sin(xx / 7.0) * np.cos(yy / 11.0)
    noise = rng.normal(0.0, 24.0 * detail, size=(height, width))
    cyy, cxx = np.mgrid[0 : height // 2, 0 : width // 2]
    shift = (index * motion) % width
    y = np.roll(base + texture, shift, axis=1) + noise
    u = 128 + 40 * np.sin((cxx + index * motion) / 23.0)
    v = 128 + 40 * np.cos((cyy + index * motion) / 19.0)
    return Frame(
        np.clip(y, 0, 255).astype(np.uint8),
        np.clip(u, 0, 255).astype(np.uint8),
        np.clip(v, 0, 255).astype(np.uint8),
    )


def psnr(a: Frame, b: Frame) -> float:
    """Peak signal-to-noise ratio over the Y plane, in dB (inf if equal)."""
    if a.y.shape != b.y.shape:
        raise ComponentError("PSNR needs identical geometry")
    mse = np.mean((a.y.astype(np.float64) - b.y.astype(np.float64)) ** 2)
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0**2 / mse)
