"""Quantization tables and (de)quantization of coefficient blocks.

The tables are the familiar ITU T.81 Annex K examples; quality scaling
follows the IJG convention (quality 50 = the base tables; higher quality
divides, lower multiplies).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

__all__ = ["LUMA_QTABLE", "CHROMA_QTABLE", "scale_qtable", "quantize", "dequantize"]

LUMA_QTABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

CHROMA_QTABLE = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.float64,
)


def scale_qtable(table: np.ndarray, quality: int) -> np.ndarray:
    """IJG-style quality scaling; quality in 1..100."""
    if not 1 <= quality <= 100:
        raise CodecError(f"quality must be 1..100, got {quality}")
    if quality < 50:
        scale = 5000 / quality
    else:
        scale = 200 - 2 * quality
    scaled = np.floor((table * scale + 50) / 100)
    return np.clip(scaled, 1, 255)


def quantize(coeffs: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """Round coefficient blocks to integer multiples of the table."""
    if qtable.shape != (8, 8):
        raise CodecError(f"qtable must be 8x8, got {qtable.shape}")
    return np.rint(coeffs / qtable).astype(np.int32)


def dequantize(quantized: np.ndarray, qtable: np.ndarray) -> np.ndarray:
    """Expand quantized integers back to coefficient magnitudes."""
    if qtable.shape != (8, 8):
        raise CodecError(f"qtable must be 8x8, got {qtable.shape}")
    return quantized.astype(np.float64) * qtable
