"""The mini-JPEG codec pipeline: frames <-> bitstreams.

Stage split mirrors paper Fig. 7:

* ``encode_frame``    — producer side (the MJPEG "files" are generated
  in memory by the workload generator);
* ``entropy_decode_frame`` — the "JPEG decode" component: Huffman + RLE
  + DC prediction + dequantization, yielding coefficient blocks;
* ``idct_plane``      — the "IDCT Y/U/V" components: coefficients back to
  pixels, restrictable to a row slice for data parallelism.

Planes must have dimensions divisible by 8 (all the paper's formats do).
Serialization (``pack``/``unpack``) produces self-contained bytes so the
compressed size is measurable — the cost model charges entropy-decode
cycles per compressed byte.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.components.jpeg.dct import dct2_blocks, idct2_blocks
from repro.components.jpeg.huffman import BitReader, BitWriter, HuffmanCodec
from repro.components.jpeg.quant import (
    CHROMA_QTABLE,
    LUMA_QTABLE,
    dequantize,
    quantize,
    scale_qtable,
)
from repro.components.jpeg.zigzag import unzigzag_blocks, zigzag_blocks
from repro.components.video import Frame
from repro.errors import CodecError

__all__ = [
    "EncodedPlane",
    "EncodedFrame",
    "PlaneCoefficients",
    "encode_plane",
    "entropy_decode_plane",
    "encode_frame",
    "entropy_decode_frame",
    "idct_plane",
    "decode_frame",
]

_MAGIC = b"RJPG"
_EOB = 0x00  # (run=0, size=0): end of block
_ZRL = 0xF0  # (run=15, size=0): sixteen zeros


@dataclass
class EncodedPlane:
    """One entropy-coded plane."""

    width: int
    height: int
    qtable: np.ndarray
    dc_lengths: dict[int, int]
    ac_lengths: dict[int, int]
    payload: bytes

    @property
    def n_blocks(self) -> int:
        return (self.width // 8) * (self.height // 8)

    @property
    def nbytes(self) -> int:
        """Serialized size (header + tables + payload)."""
        return 4 + 64 + 2 * (len(self.dc_lengths) + len(self.ac_lengths)) + 8 + len(
            self.payload
        )

    def pack(self) -> bytes:
        out = bytearray()
        out += struct.pack("<HH", self.width, self.height)
        out += self.qtable.astype(np.uint8).tobytes()
        for table in (self.dc_lengths, self.ac_lengths):
            out += struct.pack("<H", len(table))
            for symbol in sorted(table):
                out += struct.pack("<BB", symbol, table[symbol])
        out += struct.pack("<I", len(self.payload))
        out += self.payload
        return bytes(out)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> tuple["EncodedPlane", int]:
        width, height = struct.unpack_from("<HH", data, offset)
        offset += 4
        qtable = np.frombuffer(data[offset : offset + 64], dtype=np.uint8).reshape(
            8, 8
        ).astype(np.float64)
        offset += 64
        tables: list[dict[int, int]] = []
        for _ in range(2):
            (count,) = struct.unpack_from("<H", data, offset)
            offset += 2
            table: dict[int, int] = {}
            for _ in range(count):
                symbol, length = struct.unpack_from("<BB", data, offset)
                offset += 2
                table[symbol] = length
            tables.append(table)
        (plen,) = struct.unpack_from("<I", data, offset)
        offset += 4
        payload = data[offset : offset + plen]
        if len(payload) != plen:
            raise CodecError("truncated plane payload")
        offset += plen
        return (
            cls(
                width=width,
                height=height,
                qtable=qtable,
                dc_lengths=tables[0],
                ac_lengths=tables[1],
                payload=payload,
            ),
            offset,
        )


@dataclass
class EncodedFrame:
    """One compressed frame (3 planes) — an 'MJPEG file' record."""

    y: EncodedPlane
    u: EncodedPlane
    v: EncodedPlane

    @property
    def nbytes(self) -> int:
        return len(_MAGIC) + self.y.nbytes + self.u.nbytes + self.v.nbytes

    def plane(self, field: str) -> EncodedPlane:
        try:
            return {"y": self.y, "u": self.u, "v": self.v}[field]
        except KeyError:
            raise CodecError(f"unknown field {field!r}") from None

    def pack(self) -> bytes:
        return _MAGIC + self.y.pack() + self.u.pack() + self.v.pack()

    @classmethod
    def unpack(cls, data: bytes) -> "EncodedFrame":
        if data[:4] != _MAGIC:
            raise CodecError("bad magic: not a mini-JPEG frame")
        offset = 4
        y, offset = EncodedPlane.unpack(data, offset)
        u, offset = EncodedPlane.unpack(data, offset)
        v, offset = EncodedPlane.unpack(data, offset)
        return cls(y=y, u=u, v=v)


@dataclass
class PlaneCoefficients:
    """Dequantized DCT coefficients: output of the entropy decoder."""

    width: int
    height: int
    blocks: np.ndarray  # (n_blocks, 8, 8) float64

    @property
    def blocks_per_row(self) -> int:
        return self.width // 8

    @property
    def nbytes(self) -> int:
        return self.blocks.nbytes


def _magnitude(value: int) -> tuple[int, int]:
    """JPEG magnitude coding: value -> (size category, amplitude bits)."""
    if value == 0:
        return 0, 0
    size = int(abs(value)).bit_length()
    if value > 0:
        return size, value
    return size, value + (1 << size) - 1


def _from_magnitude(size: int, bits: int) -> int:
    if size == 0:
        return 0
    if bits >> (size - 1):
        return bits
    return bits - (1 << size) + 1


def _blockify(plane: np.ndarray) -> np.ndarray:
    h, w = plane.shape
    if h % 8 or w % 8:
        raise CodecError(f"plane {w}x{h} not divisible by 8")
    return (
        plane.reshape(h // 8, 8, w // 8, 8)
        .transpose(0, 2, 1, 3)
        .reshape(-1, 8, 8)
        .astype(np.float64)
    )


def _deblockify(blocks: np.ndarray, width: int, height: int) -> np.ndarray:
    return (
        blocks.reshape(height // 8, width // 8, 8, 8)
        .transpose(0, 2, 1, 3)
        .reshape(height, width)
    )


def encode_plane(plane: np.ndarray, qtable: np.ndarray) -> EncodedPlane:
    """Full encode of one plane."""
    height, width = plane.shape
    blocks = _blockify(plane) - 128.0
    zz = zigzag_blocks(quantize(dct2_blocks(blocks), qtable))  # (n, 64) int32

    # Build the symbol stream: DC differences + AC run-lengths.
    dc = zz[:, 0].astype(np.int64)
    dc_diff = np.diff(dc, prepend=0)
    records: list[tuple[int, int, int, bool]] = []  # (symbol, bits, size, is_dc)
    dc_freq: dict[int, int] = {}
    ac_freq: dict[int, int] = {}
    for b in range(zz.shape[0]):
        size, bits = _magnitude(int(dc_diff[b]))
        records.append((size, bits, size, True))
        dc_freq[size] = dc_freq.get(size, 0) + 1
        row = zz[b]
        nz = np.nonzero(row[1:])[0] + 1
        prev = 0
        for idx in nz:
            run = int(idx) - prev - 1
            while run > 15:
                records.append((_ZRL, 0, 0, False))
                ac_freq[_ZRL] = ac_freq.get(_ZRL, 0) + 1
                run -= 16
            size, bits = _magnitude(int(row[idx]))
            symbol = (run << 4) | size
            records.append((symbol, bits, size, False))
            ac_freq[symbol] = ac_freq.get(symbol, 0) + 1
            prev = int(idx)
        if prev != 63:
            records.append((_EOB, 0, 0, False))
            ac_freq[_EOB] = ac_freq.get(_EOB, 0) + 1

    dc_codec = HuffmanCodec.from_frequencies(dc_freq)
    ac_codec = HuffmanCodec.from_frequencies(ac_freq)
    writer = BitWriter()
    for symbol, bits, size, is_dc in records:
        (dc_codec if is_dc else ac_codec).encode_symbol(writer, symbol)
        if size:
            writer.write(bits, size)
    return EncodedPlane(
        width=width,
        height=height,
        qtable=np.asarray(qtable, dtype=np.float64),
        dc_lengths=dc_codec.lengths(),
        ac_lengths=ac_codec.lengths(),
        payload=writer.getvalue(),
    )


def entropy_decode_plane(encoded: EncodedPlane) -> PlaneCoefficients:
    """Huffman + RLE + DC prediction + dequantization."""
    dc_codec = HuffmanCodec.from_lengths(encoded.dc_lengths)
    ac_codec = HuffmanCodec.from_lengths(encoded.ac_lengths)
    reader = BitReader(encoded.payload)
    n = encoded.n_blocks
    zz = np.zeros((n, 64), dtype=np.int32)
    dc_prev = 0
    for b in range(n):
        size = dc_codec.decode_symbol(reader)
        bits = reader.read(size) if size else 0
        dc_prev += _from_magnitude(size, bits)
        zz[b, 0] = dc_prev
        pos = 1
        while pos < 64:
            symbol = ac_codec.decode_symbol(reader)
            if symbol == _EOB:
                break
            if symbol == _ZRL:
                pos += 16
                continue
            run = symbol >> 4
            size = symbol & 0x0F
            pos += run
            if pos >= 64:
                raise CodecError("AC run overflows block")
            bits = reader.read(size)
            zz[b, pos] = _from_magnitude(size, bits)
            pos += 1
    blocks = dequantize(unzigzag_blocks(zz), encoded.qtable)
    return PlaneCoefficients(
        width=encoded.width, height=encoded.height, blocks=blocks
    )


def idct_plane(
    coeffs: PlaneCoefficients, rows: tuple[int, int] | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Inverse DCT back to uint8 pixels, optionally for rows [lo, hi).

    ``rows`` bounds must be multiples of 8 (block granularity) — the
    applications pick slice counts that satisfy this (e.g. 45 slices of a
    720-row image = 16 rows each).
    """
    height, width = coeffs.height, coeffs.width
    if out is None:
        out = np.empty((height, width), dtype=np.uint8)
    elif out.shape != (height, width):
        raise CodecError(f"out must be {width}x{height}, got {out.shape}")
    lo, hi = rows if rows is not None else (0, height)
    if lo % 8 or hi % 8:
        raise CodecError(f"row slice [{lo},{hi}) not block-aligned")
    bpr = coeffs.blocks_per_row
    block_lo, block_hi = (lo // 8) * bpr, (hi // 8) * bpr
    pixels = idct2_blocks(coeffs.blocks[block_lo:block_hi]) + 128.0
    out[lo:hi] = np.clip(np.rint(pixels), 0, 255).astype(np.uint8).reshape(
        (hi - lo) // 8, bpr, 8, 8
    ).transpose(0, 2, 1, 3).reshape(hi - lo, width)
    return out


def encode_frame(frame: Frame, *, quality: int = 75) -> EncodedFrame:
    """Compress one YUV 4:2:0 frame."""
    luma_q = scale_qtable(LUMA_QTABLE, quality)
    chroma_q = scale_qtable(CHROMA_QTABLE, quality)
    return EncodedFrame(
        y=encode_plane(frame.y, luma_q),
        u=encode_plane(frame.u, chroma_q),
        v=encode_plane(frame.v, chroma_q),
    )


def entropy_decode_frame(
    encoded: EncodedFrame,
) -> dict[str, PlaneCoefficients]:
    """The "JPEG decode" stage: all three planes to coefficients."""
    return {
        "y": entropy_decode_plane(encoded.y),
        "u": entropy_decode_plane(encoded.u),
        "v": entropy_decode_plane(encoded.v),
    }


def decode_frame(encoded: EncodedFrame) -> Frame:
    """Full decode (entropy + IDCT) of all planes."""
    coeffs = entropy_decode_frame(encoded)
    return Frame(
        y=idct_plane(coeffs["y"]),
        u=idct_plane(coeffs["u"]),
        v=idct_plane(coeffs["v"]),
    )
