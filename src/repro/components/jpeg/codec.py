"""The mini-JPEG codec pipeline: frames <-> bitstreams.

Stage split mirrors paper Fig. 7:

* ``encode_frame``    — producer side (the MJPEG "files" are generated
  in memory by the workload generator);
* ``entropy_decode_frame`` — the "JPEG decode" component: Huffman + RLE
  + DC prediction + dequantization, yielding coefficient blocks;
* ``idct_plane``      — the "IDCT Y/U/V" components: coefficients back to
  pixels, restrictable to a row slice for data parallelism.

Planes must have dimensions divisible by 8 (all the paper's formats do).
Serialization (``pack``/``unpack``) produces self-contained bytes so the
compressed size is measurable — the cost model charges entropy-decode
cycles per compressed byte.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.components.jpeg.dct import _C, _CT, dct2_blocks, idct2_blocks
from repro.components.jpeg.huffman import (
    LOOKUP_BITS,
    BitReader,
    BitWriter,
    HuffmanCodec,
    pack_fields,
)
from repro.components.jpeg.quant import (
    CHROMA_QTABLE,
    LUMA_QTABLE,
    dequantize,
    quantize,
    scale_qtable,
)
from repro.components.jpeg.zigzag import (
    ZIGZAG_ORDER,
    unzigzag_blocks,
    zigzag_blocks,
)
from repro.components.video import Frame
from repro.errors import CodecError

__all__ = [
    "EncodedPlane",
    "EncodedFrame",
    "PlaneCoefficients",
    "encode_plane",
    "entropy_decode_plane",
    "encode_frame",
    "entropy_decode_frame",
    "fused_dct_quant_zigzag",
    "quantize_plane",
    "coefficients_from_zigzag",
    "idct_plane",
    "decode_frame",
]

_MAGIC = b"RJPG"
_EOB = 0x00  # (run=0, size=0): end of block
_ZRL = 0xF0  # (run=15, size=0): sixteen zeros


@dataclass
class EncodedPlane:
    """One entropy-coded plane."""

    width: int
    height: int
    qtable: np.ndarray
    dc_lengths: dict[int, int]
    ac_lengths: dict[int, int]
    payload: bytes

    @property
    def n_blocks(self) -> int:
        return (self.width // 8) * (self.height // 8)

    @property
    def nbytes(self) -> int:
        """Serialized size (header + tables + payload)."""
        return 4 + 64 + 2 * (len(self.dc_lengths) + len(self.ac_lengths)) + 8 + len(
            self.payload
        )

    def pack(self) -> bytes:
        out = bytearray()
        out += struct.pack("<HH", self.width, self.height)
        out += self.qtable.astype(np.uint8).tobytes()
        for table in (self.dc_lengths, self.ac_lengths):
            out += struct.pack("<H", len(table))
            for symbol in sorted(table):
                out += struct.pack("<BB", symbol, table[symbol])
        out += struct.pack("<I", len(self.payload))
        out += self.payload
        return bytes(out)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> tuple["EncodedPlane", int]:
        width, height = struct.unpack_from("<HH", data, offset)
        offset += 4
        qtable = np.frombuffer(data[offset : offset + 64], dtype=np.uint8).reshape(
            8, 8
        ).astype(np.float64)
        offset += 64
        tables: list[dict[int, int]] = []
        for _ in range(2):
            (count,) = struct.unpack_from("<H", data, offset)
            offset += 2
            table: dict[int, int] = {}
            for _ in range(count):
                symbol, length = struct.unpack_from("<BB", data, offset)
                offset += 2
                table[symbol] = length
            tables.append(table)
        (plen,) = struct.unpack_from("<I", data, offset)
        offset += 4
        payload = data[offset : offset + plen]
        if len(payload) != plen:
            raise CodecError("truncated plane payload")
        offset += plen
        return (
            cls(
                width=width,
                height=height,
                qtable=qtable,
                dc_lengths=tables[0],
                ac_lengths=tables[1],
                payload=payload,
            ),
            offset,
        )


@dataclass
class EncodedFrame:
    """One compressed frame (3 planes) — an 'MJPEG file' record."""

    #: format ``kind=`` this payload satisfies (interface reconciliation)
    FORMAT_KIND = "bitstream"

    y: EncodedPlane
    u: EncodedPlane
    v: EncodedPlane

    @property
    def nbytes(self) -> int:
        return len(_MAGIC) + self.y.nbytes + self.u.nbytes + self.v.nbytes

    def plane(self, field: str) -> EncodedPlane:
        try:
            return {"y": self.y, "u": self.u, "v": self.v}[field]
        except KeyError:
            raise CodecError(f"unknown field {field!r}") from None

    def pack(self) -> bytes:
        return _MAGIC + self.y.pack() + self.u.pack() + self.v.pack()

    @classmethod
    def unpack(cls, data: bytes) -> "EncodedFrame":
        if data[:4] != _MAGIC:
            raise CodecError("bad magic: not a mini-JPEG frame")
        offset = 4
        y, offset = EncodedPlane.unpack(data, offset)
        u, offset = EncodedPlane.unpack(data, offset)
        v, offset = EncodedPlane.unpack(data, offset)
        return cls(y=y, u=u, v=v)


@dataclass
class PlaneCoefficients:
    """Dequantized DCT coefficients: output of the entropy decoder."""

    #: format ``kind=`` this payload satisfies (interface reconciliation)
    FORMAT_KIND = "coeffs"

    width: int
    height: int
    blocks: np.ndarray  # (n_blocks, 8, 8) float64

    @property
    def blocks_per_row(self) -> int:
        return self.width // 8

    @property
    def nbytes(self) -> int:
        return self.blocks.nbytes


def _magnitude(value: int) -> tuple[int, int]:
    """JPEG magnitude coding: value -> (size category, amplitude bits)."""
    if value == 0:
        return 0, 0
    size = int(abs(value)).bit_length()
    if value > 0:
        return size, value
    return size, value + (1 << size) - 1


def _from_magnitude(size: int, bits: int) -> int:
    if size == 0:
        return 0
    if bits >> (size - 1):
        return bits
    return bits - (1 << size) + 1


def _blockify(plane: np.ndarray) -> np.ndarray:
    h, w = plane.shape
    if h % 8 or w % 8:
        raise CodecError(f"plane {w}x{h} not divisible by 8")
    return (
        plane.reshape(h // 8, 8, w // 8, 8)
        .transpose(0, 2, 1, 3)
        .reshape(-1, 8, 8)
        .astype(np.float64)
    )


def _deblockify(blocks: np.ndarray, width: int, height: int) -> np.ndarray:
    return (
        blocks.reshape(height // 8, width // 8, 8, 8)
        .transpose(0, 2, 1, 3)
        .reshape(height, width)
    )


def _vec_magnitude(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`_magnitude`: values -> (sizes, amplitude bits)."""
    values = values.astype(np.int64)
    mag = np.abs(values)
    sizes = np.zeros(values.shape, dtype=np.int64)
    probe = mag.copy()
    while probe.any():
        sizes += probe > 0
        probe >>= 1
    bits = np.where(values >= 0, values, values + (1 << sizes) - 1)
    return sizes, bits


def _record_stream(zz: np.ndarray) -> tuple[np.ndarray, ...]:
    """Vectorized symbol-stream construction from zigzagged blocks.

    Returns ``(symbols, amp_bits, amp_sizes, is_dc)`` arrays in exact
    bitstream order — the same record sequence the per-block Python loop
    produced: per block a DC size/amplitude record, then for each nonzero
    AC coefficient its ZRL prefixes and ``(run<<4)|size`` record, then an
    EOB unless the block's last nonzero sits at position 63.
    """
    n = zz.shape[0]
    dc_sizes, dc_bits = _vec_magnitude(np.diff(zz[:, 0].astype(np.int64), prepend=0))

    rows, cols = np.nonzero(zz[:, 1:])
    cols = cols.astype(np.int64) + 1
    rows = rows.astype(np.int64)
    first = np.ones(rows.shape, dtype=bool)
    first[1:] = rows[1:] != rows[:-1]
    prev = np.where(first, 0, np.roll(cols, 1))
    run = cols - prev - 1
    zrl = run >> 4
    rem = run & 15
    ac_sizes, ac_bits = _vec_magnitude(zz[rows, cols])
    ac_syms = (rem << 4) | ac_sizes

    eob_blocks = np.setdiff1d(
        np.arange(n, dtype=np.int64), rows[cols == 63], assume_unique=False
    )

    n_zrl = int(zrl.sum())
    zrl_rows = np.repeat(rows, zrl)
    zrl_cols = np.repeat(cols, zrl)
    if n_zrl:
        starts = np.cumsum(zrl) - zrl
        zrl_sub = np.arange(n_zrl, dtype=np.int64) - np.repeat(starts, zrl)
    else:
        zrl_sub = np.zeros(0, dtype=np.int64)

    # Stream order via a unique integer sort key (block, position, sub):
    # DC at position 0, ZRLs just before their AC record, EOB at 64.
    def key(blocks: np.ndarray, pos: np.ndarray, sub: np.ndarray) -> np.ndarray:
        return (blocks * 65 + pos) * 17 + sub

    keys = np.concatenate([
        key(np.arange(n, dtype=np.int64), 0, 0),
        key(zrl_rows, zrl_cols, zrl_sub),
        key(rows, cols, zrl),
        key(eob_blocks, 64, 0),
    ])
    symbols = np.concatenate([
        dc_sizes,
        np.full(n_zrl, _ZRL, dtype=np.int64),
        ac_syms,
        np.full(eob_blocks.size, _EOB, dtype=np.int64),
    ])
    amp_bits = np.concatenate([
        dc_bits,
        np.zeros(n_zrl, dtype=np.int64),
        ac_bits,
        np.zeros(eob_blocks.size, dtype=np.int64),
    ])
    amp_sizes = np.concatenate([
        dc_sizes,
        np.zeros(n_zrl, dtype=np.int64),
        ac_sizes,
        np.zeros(eob_blocks.size, dtype=np.int64),
    ])
    is_dc = np.zeros(keys.shape, dtype=bool)
    is_dc[:n] = True
    order = np.argsort(keys)
    return symbols[order], amp_bits[order], amp_sizes[order], is_dc[order]


def _freq_dict(symbols: np.ndarray) -> dict[int, int]:
    counts = np.bincount(symbols, minlength=1)
    return {int(s): int(c) for s, c in enumerate(counts) if c}


#: compiled numba kernel cache: None = not tried, False = unavailable
_NUMBA_KERNEL: object = None


def _numba_encode_kernel():
    """Compile (once) the njit DCT->quant->zigzag kernel, or ``None``.

    numba's ``np.dot`` on contiguous float64 matrices dispatches to the
    same BLAS the numpy expression uses, and rounding/casting mirror the
    numpy kernel operation for operation, so the compiled variant stays
    bit-identical.  Any import or compilation failure degrades silently
    to the numpy expression — numba is strictly optional.
    """
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:
        try:
            import numba

            @numba.njit(cache=False)
            def kernel(blocks, qtable, c, ct, order):  # pragma: no cover
                n = blocks.shape[0]
                out = np.empty((n, 64), dtype=np.int32)
                for i in range(n):
                    coeff = np.dot(np.dot(c, blocks[i]), ct) / qtable
                    flat = coeff.copy().reshape(64)
                    for j in range(64):
                        out[i, j] = np.int32(np.rint(flat[order[j]]))
                return out

            _NUMBA_KERNEL = kernel
        except Exception:
            _NUMBA_KERNEL = False
    return _NUMBA_KERNEL or None


def fused_dct_quant_zigzag(
    blocks: np.ndarray, qtable: np.ndarray, *, backend: str = "numpy"
) -> np.ndarray:
    """DCT -> quantize -> zigzag as one kernel: (n, 8, 8) -> (n, 64) int32.

    Elementwise identical to
    ``zigzag_blocks(quantize(dct2_blocks(blocks), qtable))`` — the same
    matmuls, division, ``rint`` and ``int32`` cast in the same order —
    but the quantized and zigzagged stages are never materialized as
    separate (n, 8, 8) arrays: one expression, one output buffer.  With
    ``backend="numba"`` a compiled variant is attempted first and the
    numpy expression remains the transparent fallback.
    """
    if blocks.shape[-2:] != (8, 8):
        raise CodecError(f"expected (..., 8, 8) blocks, got {blocks.shape}")
    if backend == "numba":
        kernel = _numba_encode_kernel()
        if kernel is not None:
            try:
                return kernel(
                    np.ascontiguousarray(blocks, dtype=np.float64),
                    np.ascontiguousarray(qtable, dtype=np.float64),
                    np.ascontiguousarray(_C),
                    np.ascontiguousarray(_CT),
                    ZIGZAG_ORDER.astype(np.int64),
                )
            except Exception:
                pass  # fall through: the numpy expression is always valid
    return (
        np.rint((_C @ blocks @ _CT) / qtable)
        .astype(np.int32)
        .reshape(blocks.shape[0], 64)[:, ZIGZAG_ORDER]
    )


def quantize_plane(
    plane: np.ndarray, qtable: np.ndarray, *, backend: str = "numpy"
) -> np.ndarray:
    """Encoder front end: pixel plane -> (n, 64) int32 zigzag coefficients."""
    return fused_dct_quant_zigzag(_blockify(plane) - 128.0, qtable,
                                  backend=backend)


def coefficients_from_zigzag(
    zz: np.ndarray, qtable: np.ndarray, *, width: int, height: int
) -> PlaneCoefficients:
    """Decoder back end: zigzag coefficients -> dequantized blocks.

    ``coefficients_from_zigzag(quantize_plane(p, q), q, ...)`` equals
    ``entropy_decode_plane(encode_plane(p, q))`` bit for bit: the
    Huffman/RLE/DC-prediction round-trip in between is lossless on the
    int32 zigzag coefficients, so a fused source+decode kernel may skip
    the bitstream detour entirely.
    """
    blocks = dequantize(unzigzag_blocks(zz), qtable)
    return PlaneCoefficients(width=width, height=height, blocks=blocks)


def encode_plane(
    plane: np.ndarray, qtable: np.ndarray, *, backend: str = "numpy"
) -> EncodedPlane:
    """Full encode of one plane (vectorized entropy coding).

    Bit-identical to the per-symbol reference implementation
    (:func:`_encode_plane_scalar`, kept for tests/fallback): the record
    stream, code tables, and packed payload are byte-for-byte equal.
    The transform front end runs as the fused
    :func:`fused_dct_quant_zigzag` kernel.
    """
    height, width = plane.shape
    blocks = _blockify(plane) - 128.0
    zz = fused_dct_quant_zigzag(blocks, qtable, backend=backend)  # (n, 64)

    symbols, amp_bits, amp_sizes, is_dc = _record_stream(zz)
    dc_codec = HuffmanCodec.from_frequencies(_freq_dict(symbols[is_dc]))
    ac_codec = HuffmanCodec.from_frequencies(_freq_dict(symbols[~is_dc]))

    if max(dc_codec.max_length, ac_codec.max_length) > 62:
        # Codes this deep cannot ride int64 bit packing; take the
        # bit-at-a-time writer (pathological frequency skew only).
        writer = BitWriter()
        for i in range(symbols.size):
            codec = dc_codec if is_dc[i] else ac_codec
            codec.encode_symbol(writer, int(symbols[i]))
            if amp_sizes[i]:
                writer.write(int(amp_bits[i]), int(amp_sizes[i]))
        payload = writer.getvalue()
    else:
        dc_codes, dc_lens = dc_codec.code_arrays()
        ac_codes, ac_lens = ac_codec.code_arrays()
        code_vals = np.where(is_dc, dc_codes[symbols], ac_codes[symbols])
        code_lens = np.where(is_dc, dc_lens[symbols], ac_lens[symbols])
        fields = np.empty(2 * symbols.size, dtype=np.int64)
        lengths = np.empty(2 * symbols.size, dtype=np.int64)
        fields[0::2] = code_vals
        fields[1::2] = amp_bits
        lengths[0::2] = code_lens
        lengths[1::2] = amp_sizes
        payload = pack_fields(fields, lengths)

    return EncodedPlane(
        width=width,
        height=height,
        qtable=np.asarray(qtable, dtype=np.float64),
        dc_lengths=dc_codec.lengths(),
        ac_lengths=ac_codec.lengths(),
        payload=payload,
    )


def _encode_plane_scalar(plane: np.ndarray, qtable: np.ndarray) -> EncodedPlane:
    """Per-symbol reference encoder (pre-vectorization semantics)."""
    height, width = plane.shape
    blocks = _blockify(plane) - 128.0
    zz = zigzag_blocks(quantize(dct2_blocks(blocks), qtable))  # (n, 64) int32

    # Build the symbol stream: DC differences + AC run-lengths.
    dc = zz[:, 0].astype(np.int64)
    dc_diff = np.diff(dc, prepend=0)
    records: list[tuple[int, int, int, bool]] = []  # (symbol, bits, size, is_dc)
    dc_freq: dict[int, int] = {}
    ac_freq: dict[int, int] = {}
    for b in range(zz.shape[0]):
        size, bits = _magnitude(int(dc_diff[b]))
        records.append((size, bits, size, True))
        dc_freq[size] = dc_freq.get(size, 0) + 1
        row = zz[b]
        nz = np.nonzero(row[1:])[0] + 1
        prev = 0
        for idx in nz:
            run = int(idx) - prev - 1
            while run > 15:
                records.append((_ZRL, 0, 0, False))
                ac_freq[_ZRL] = ac_freq.get(_ZRL, 0) + 1
                run -= 16
            size, bits = _magnitude(int(row[idx]))
            symbol = (run << 4) | size
            records.append((symbol, bits, size, False))
            ac_freq[symbol] = ac_freq.get(symbol, 0) + 1
            prev = int(idx)
        if prev != 63:
            records.append((_EOB, 0, 0, False))
            ac_freq[_EOB] = ac_freq.get(_EOB, 0) + 1

    dc_codec = HuffmanCodec.from_frequencies(dc_freq)
    ac_codec = HuffmanCodec.from_frequencies(ac_freq)
    writer = BitWriter()
    for symbol, bits, size, is_dc in records:
        (dc_codec if is_dc else ac_codec).encode_symbol(writer, symbol)
        if size:
            writer.write(bits, size)
    return EncodedPlane(
        width=width,
        height=height,
        qtable=np.asarray(qtable, dtype=np.float64),
        dc_lengths=dc_codec.lengths(),
        ac_lengths=ac_codec.lengths(),
        payload=writer.getvalue(),
    )


_WINDOW_BITS = 32  # per-position window: lookup index in the top half,
                   # amplitude fields read from the top ``size`` bits


def _bit_windows(payload: bytes) -> tuple[np.ndarray, int]:
    """``windows[i]`` = the 32 bits starting at bit ``i`` (zero-padded).

    Built byte-wise: a 40-bit value per byte position covers all eight
    bit offsets within that byte, so construction is eight strided
    shifts over byte-sized arrays rather than 32 over bit-sized ones.
    """
    nbytes = len(payload)
    total = nbytes * 8
    if not nbytes:
        return np.zeros(1, dtype=np.uint64), 0
    padded = np.zeros(nbytes + 4, dtype=np.uint64)
    padded[:nbytes] = np.frombuffer(payload, dtype=np.uint8)
    wide = (
        (padded[:nbytes] << np.uint64(32))
        | (padded[1 : nbytes + 1] << np.uint64(24))
        | (padded[2 : nbytes + 2] << np.uint64(16))
        | (padded[3 : nbytes + 3] << np.uint64(8))
        | padded[4 : nbytes + 4]
    )
    windows = np.empty(total, dtype=np.uint64)
    mask = np.uint64(0xFFFFFFFF)
    for r in range(8):
        windows[r::8] = (wide >> np.uint64(8 - r)) & mask
    return windows, total


def entropy_decode_plane(encoded: EncodedPlane) -> PlaneCoefficients:
    """Huffman + RLE + DC prediction + dequantization.

    Table-driven: each Huffman code resolves with one indexed lookup into
    a precomputed 2^16 canonical-code table instead of a bit-at-a-time
    dict walk; amplitude fields read straight out of precomputed 32-bit
    windows.  Falls back to the scalar reference decoder when any code is
    longer than the table index (:data:`LOOKUP_BITS`).
    """
    dc_codec = HuffmanCodec.from_lengths(encoded.dc_lengths)
    ac_codec = HuffmanCodec.from_lengths(encoded.ac_lengths)
    dc_lut = dc_codec.lookup_table()
    ac_lut = ac_codec.lookup_table()
    if dc_lut is None or ac_lut is None:
        return _entropy_decode_plane_scalar(encoded)

    # Plain Python lists: per-symbol indexing on lists is several times
    # faster than numpy scalar indexing, and the conversions are one
    # C-speed pass each.
    dc_syms, dc_lens = (a.tolist() for a in dc_lut)
    ac_syms, ac_lens = (a.tolist() for a in ac_lut)
    windows_arr, total = _bit_windows(encoded.payload)
    windows = windows_arr.tolist()
    shift = _WINDOW_BITS - LOOKUP_BITS
    width_bits = _WINDOW_BITS
    n = encoded.n_blocks
    # Decoded coefficients accumulate as flat (index, value) streams and
    # land in the zz matrix with one fancy-index store at the end.
    out_idx: list[int] = []
    out_val: list[int] = []
    dc_prev = 0
    pos = 0
    for b in range(n):
        if pos >= total:
            raise CodecError("bitstream exhausted")
        idx = windows[pos] >> shift
        size = dc_syms[idx]
        if size < 0:
            raise CodecError("invalid Huffman code in bitstream")
        pos += dc_lens[idx]
        if size:
            if pos + size > total:
                raise CodecError("bitstream exhausted")
            bits = windows[pos] >> (width_bits - size)
            pos += size
            if not bits >> (size - 1):
                bits -= (1 << size) - 1
            dc_prev += bits
        base = b << 6
        out_idx.append(base)
        out_val.append(dc_prev)
        slot = 1
        while slot < 64:
            if pos >= total:
                raise CodecError("bitstream exhausted")
            idx = windows[pos] >> shift
            symbol = ac_syms[idx]
            if symbol < 0:
                raise CodecError("invalid Huffman code in bitstream")
            pos += ac_lens[idx]
            if symbol == _EOB:
                break
            if symbol == _ZRL:
                slot += 16
                continue
            size = symbol & 0x0F
            slot += symbol >> 4
            if slot >= 64:
                raise CodecError("AC run overflows block")
            if pos + size > total:
                raise CodecError("bitstream exhausted")
            if size:
                bits = windows[pos] >> (width_bits - size)
                pos += size
                if not bits >> (size - 1):
                    bits -= (1 << size) - 1
            else:
                bits = 0
            out_idx.append(base + slot)
            out_val.append(bits)
            slot += 1
    zz = np.zeros(n * 64, dtype=np.int32)
    zz[out_idx] = out_val
    zz = zz.reshape(n, 64)
    blocks = dequantize(unzigzag_blocks(zz), encoded.qtable)
    return PlaneCoefficients(
        width=encoded.width, height=encoded.height, blocks=blocks
    )


def _entropy_decode_plane_scalar(encoded: EncodedPlane) -> PlaneCoefficients:
    """Bit-at-a-time reference decoder (pre-vectorization semantics)."""
    dc_codec = HuffmanCodec.from_lengths(encoded.dc_lengths)
    ac_codec = HuffmanCodec.from_lengths(encoded.ac_lengths)
    reader = BitReader(encoded.payload)
    n = encoded.n_blocks
    zz = np.zeros((n, 64), dtype=np.int32)
    dc_prev = 0
    for b in range(n):
        size = dc_codec.decode_symbol(reader)
        bits = reader.read(size) if size else 0
        dc_prev += _from_magnitude(size, bits)
        zz[b, 0] = dc_prev
        pos = 1
        while pos < 64:
            symbol = ac_codec.decode_symbol(reader)
            if symbol == _EOB:
                break
            if symbol == _ZRL:
                pos += 16
                continue
            run = symbol >> 4
            size = symbol & 0x0F
            pos += run
            if pos >= 64:
                raise CodecError("AC run overflows block")
            bits = reader.read(size)
            zz[b, pos] = _from_magnitude(size, bits)
            pos += 1
    blocks = dequantize(unzigzag_blocks(zz), encoded.qtable)
    return PlaneCoefficients(
        width=encoded.width, height=encoded.height, blocks=blocks
    )


def idct_plane(
    coeffs: PlaneCoefficients, rows: tuple[int, int] | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Inverse DCT back to uint8 pixels, optionally for rows [lo, hi).

    ``rows`` bounds must be multiples of 8 (block granularity) — the
    applications pick slice counts that satisfy this (e.g. 45 slices of a
    720-row image = 16 rows each).
    """
    height, width = coeffs.height, coeffs.width
    if out is None:
        out = np.empty((height, width), dtype=np.uint8)
    elif out.shape != (height, width):
        raise CodecError(f"out must be {width}x{height}, got {out.shape}")
    lo, hi = rows if rows is not None else (0, height)
    if lo % 8 or hi % 8:
        raise CodecError(f"row slice [{lo},{hi}) not block-aligned")
    bpr = coeffs.blocks_per_row
    block_lo, block_hi = (lo // 8) * bpr, (hi // 8) * bpr
    pixels = idct2_blocks(coeffs.blocks[block_lo:block_hi]) + 128.0
    out[lo:hi] = np.clip(np.rint(pixels), 0, 255).astype(np.uint8).reshape(
        (hi - lo) // 8, bpr, 8, 8
    ).transpose(0, 2, 1, 3).reshape(hi - lo, width)
    return out


def encode_frame(
    frame: Frame, *, quality: int = 75, backend: str = "numpy"
) -> EncodedFrame:
    """Compress one YUV 4:2:0 frame."""
    luma_q = scale_qtable(LUMA_QTABLE, quality)
    chroma_q = scale_qtable(CHROMA_QTABLE, quality)
    return EncodedFrame(
        y=encode_plane(frame.y, luma_q, backend=backend),
        u=encode_plane(frame.u, chroma_q, backend=backend),
        v=encode_plane(frame.v, chroma_q, backend=backend),
    )


def entropy_decode_frame(
    encoded: EncodedFrame,
) -> dict[str, PlaneCoefficients]:
    """The "JPEG decode" stage: all three planes to coefficients."""
    return {
        "y": entropy_decode_plane(encoded.y),
        "u": entropy_decode_plane(encoded.u),
        "v": entropy_decode_plane(encoded.v),
    }


def decode_frame(encoded: EncodedFrame) -> Frame:
    """Full decode (entropy + IDCT) of all planes."""
    coeffs = entropy_decode_frame(encoded)
    return Frame(
        y=idct_plane(coeffs["y"]),
        u=idct_plane(coeffs["u"]),
        v=idct_plane(coeffs["v"]),
    )
