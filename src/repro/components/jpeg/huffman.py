"""Bit-level I/O and canonical Huffman coding.

The entropy layer of the mini-JPEG codec: symbol frequencies are gathered
per encoded plane, a canonical Huffman code is built (so only the
``(symbol, length)`` table needs to travel in the header), and amplitude
bits are written raw after each symbol, as in baseline JPEG.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import CodecError

__all__ = [
    "BitWriter", "BitReader", "build_canonical_codes", "HuffmanCodec",
    "pack_fields",
]

#: lookup-table decode width: one table index covers any code (and any
#: JPEG amplitude field) up to this many bits.  Codes longer than this —
#: possible only for pathological frequency distributions — fall back to
#: the bit-at-a-time scalar decoder.
LOOKUP_BITS = 16


def pack_fields(values: np.ndarray, lengths: np.ndarray) -> bytes:
    """MSB-first bit-pack ``values[i]`` into ``lengths[i]`` bits each.

    The vectorized equivalent of a :class:`BitWriter` loop (including the
    zero-padding to a byte boundary), used by the table-driven JPEG
    entropy encoder: every field of one plane — Huffman codes and
    amplitude bits interleaved — is emitted by one call.  Zero-length
    fields contribute nothing, so callers can interleave optional
    amplitude fields without filtering.
    """
    values = np.asarray(values, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return b""
    # Explode each field into its bits: bit j of field i (MSB first) is
    # (values[i] >> (lengths[i] - 1 - j)) & 1.
    rep_values = np.repeat(values, lengths)
    rep_lengths = np.repeat(lengths, lengths)
    starts = np.cumsum(lengths) - lengths
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
    bits = (rep_values >> (rep_lengths - 1 - within)) & 1
    return np.packbits(bits.astype(np.uint8)).tobytes()


class BitWriter:
    """MSB-first bit accumulator producing bytes."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0
        self.bits_written = 0

    def write(self, value: int, nbits: int) -> None:
        if nbits < 0 or (nbits == 0 and value != 0):
            raise CodecError(f"cannot write {value} in {nbits} bits")
        if nbits and value >> nbits:
            raise CodecError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits
        self.bits_written += nbits
        while self._nbits >= 8:
            self._nbits -= 8
            self._out.append((self._acc >> self._nbits) & 0xFF)
        self._acc &= (1 << self._nbits) - 1 if self._nbits else 0

    def getvalue(self) -> bytes:
        """Flush (zero-padded to a byte boundary) and return the bytes."""
        out = bytearray(self._out)
        if self._nbits:
            out.append((self._acc << (8 - self._nbits)) & 0xFF)
        return bytes(out)


class BitReader:
    """MSB-first bit consumer over a bytes object."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    def read(self, nbits: int) -> int:
        if nbits < 0:
            raise CodecError(f"cannot read {nbits} bits")
        end = self._pos + nbits
        if end > len(self._data) * 8:
            raise CodecError("bitstream exhausted")
        value = 0
        pos = self._pos
        while nbits:
            byte = self._data[pos >> 3]
            avail = 8 - (pos & 7)
            take = min(avail, nbits)
            shift = avail - take
            value = (value << take) | ((byte >> shift) & ((1 << take) - 1))
            pos += take
            nbits -= take
        self._pos = pos
        return value

    def read_bit(self) -> int:
        return self.read(1)

    @property
    def bits_left(self) -> int:
        return len(self._data) * 8 - self._pos


def build_canonical_codes(freqs: dict[int, int]) -> dict[int, tuple[int, int]]:
    """Symbol -> (code, length) canonical Huffman codes from frequencies.

    Deterministic: ties in the heap break on symbol value; canonical
    assignment sorts by (length, symbol).  A single-symbol alphabet gets a
    1-bit code.
    """
    symbols = [(f, s) for s, f in freqs.items() if f > 0]
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0][1]: (0, 1)}
    # Huffman code lengths via pairwise merging; entries are
    # (freq, tiebreak, [symbols in subtree]).
    heap: list[tuple[int, int, list[int]]] = [
        (f, s, [s]) for f, s in sorted(symbols)
    ]
    heapq.heapify(heap)
    lengths = {s: 0 for _, s in symbols}
    while len(heap) > 1:
        fa, ta, syms_a = heapq.heappop(heap)
        fb, tb, syms_b = heapq.heappop(heap)
        for s in syms_a + syms_b:
            lengths[s] += 1
        heapq.heappush(heap, (fa + fb, min(ta, tb), syms_a + syms_b))
    return _canonical_from_lengths(lengths)


def _canonical_from_lengths(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for symbol in sorted(lengths, key=lambda s: (lengths[s], s)):
        length = lengths[symbol]
        code <<= length - prev_len
        codes[symbol] = (code, length)
        code += 1
        prev_len = length
    return codes


@dataclass
class HuffmanCodec:
    """Encode/decode symbol sequences with a canonical code table."""

    codes: dict[int, tuple[int, int]]

    def __post_init__(self) -> None:
        self._decode: dict[tuple[int, int], int] = {
            (length, code): symbol
            for symbol, (code, length) in self.codes.items()
        }
        self.max_length = max(
            (length for _, length in self.codes.values()), default=0
        )

    @classmethod
    def from_frequencies(cls, freqs: dict[int, int]) -> "HuffmanCodec":
        return cls(build_canonical_codes(freqs))

    @classmethod
    def from_lengths(cls, lengths: dict[int, int]) -> "HuffmanCodec":
        return cls(_canonical_from_lengths(lengths))

    def lengths(self) -> dict[int, int]:
        """The (symbol -> code length) table; enough to reconstruct."""
        return {s: length for s, (_, length) in self.codes.items()}

    def encode_symbol(self, writer: BitWriter, symbol: int) -> None:
        try:
            code, length = self.codes[symbol]
        except KeyError:
            raise CodecError(f"symbol {symbol} not in Huffman table") from None
        writer.write(code, length)

    def decode_symbol(self, reader: BitReader) -> int:
        code = 0
        for length in range(1, self.max_length + 1):
            code = (code << 1) | reader.read_bit()
            symbol = self._decode.get((length, code))
            if symbol is not None:
                return symbol
        raise CodecError("invalid Huffman code in bitstream")

    def code_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(codes, lengths)`` int64 arrays indexed by symbol value.

        Symbols absent from the table have length 0; the vectorized
        encoder multiplies frequencies through these, so an absent symbol
        can only be reached on a malformed record stream.
        """
        arrays = getattr(self, "_code_arrays", None)
        if arrays is None:
            codes = np.zeros(256, dtype=np.int64)
            lengths = np.zeros(256, dtype=np.int64)
            for symbol, (code, length) in self.codes.items():
                codes[symbol] = code
                lengths[symbol] = length
            arrays = self._code_arrays = (codes, lengths)
        return arrays

    def lookup_table(self) -> tuple[np.ndarray, np.ndarray] | None:
        """``(symbols, lengths)`` decode tables indexed by the next
        :data:`LOOKUP_BITS` bits of the stream, or ``None`` when some code
        is too long for one table index.

        Canonical codes are left-justified into the index: every window
        whose leading bits equal a code maps to that code's symbol.
        Windows matching no code map to symbol -1 (invalid stream).
        """
        if not self.codes or self.max_length > LOOKUP_BITS:
            return None
        table = getattr(self, "_lookup", None)
        if table is None:
            symbols = np.full(1 << LOOKUP_BITS, -1, dtype=np.int16)
            lengths = np.zeros(1 << LOOKUP_BITS, dtype=np.int16)
            for symbol, (code, length) in self.codes.items():
                start = code << (LOOKUP_BITS - length)
                span = 1 << (LOOKUP_BITS - length)
                symbols[start : start + span] = symbol
                lengths[start : start + span] = length
            table = self._lookup = (symbols, lengths)
        return table
