"""8x8 type-II DCT / inverse DCT over batches of blocks.

Implemented as two matrix multiplies with the precomputed orthonormal
DCT-II basis (``C @ X @ C.T``), vectorized over an arbitrary leading
batch dimension — the idiomatic numpy formulation (no per-block Python
loops; see the HPC guide's "vectorizing for loops").
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

__all__ = ["BLOCK", "dct_matrix", "dct2_blocks", "idct2_blocks"]

BLOCK = 8


def dct_matrix(n: int = BLOCK) -> np.ndarray:
    """Orthonormal DCT-II basis matrix C: row k holds cos((2j+1)k pi/2n)."""
    j = np.arange(n)
    k = j.reshape(-1, 1)
    c = np.cos((2 * j + 1) * k * np.pi / (2 * n)) * np.sqrt(2.0 / n)
    c[0] /= np.sqrt(2.0)
    return c


_C = dct_matrix()
_CT = _C.T


def _check_blocks(blocks: np.ndarray) -> None:
    if blocks.ndim < 2 or blocks.shape[-2:] != (BLOCK, BLOCK):
        raise CodecError(
            f"expected (..., {BLOCK}, {BLOCK}) blocks, got shape {blocks.shape}"
        )


def dct2_blocks(blocks: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of each 8x8 block; float64 output.

    Input blocks should be level-shifted (pixel - 128) floats.
    """
    _check_blocks(blocks)
    return _C @ blocks @ _CT


def idct2_blocks(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT of each 8x8 coefficient block; float64 output."""
    _check_blocks(coeffs)
    return _CT @ coeffs @ _C
