"""Zigzag scan order for 8x8 blocks.

The zigzag permutation orders coefficients by increasing spatial
frequency so the quantized high-frequency zeros cluster at the end of the
scan, where run-length coding eats them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

__all__ = ["ZIGZAG_ORDER", "INVERSE_ZIGZAG", "zigzag_blocks", "unzigzag_blocks"]


def _build_zigzag(n: int = 8) -> np.ndarray:
    """Flat indices (row*n+col) of the zigzag walk over an n x n block."""
    order = []
    for s in range(2 * n - 1):
        coords = [(i, s - i) for i in range(max(0, s - n + 1), min(s, n - 1) + 1)]
        if s % 2 == 0:
            coords.reverse()  # even anti-diagonals walk bottom-left -> top-right
        order.extend(r * n + c for r, c in coords)
    return np.array(order, dtype=np.intp)


ZIGZAG_ORDER = _build_zigzag()
INVERSE_ZIGZAG = np.argsort(ZIGZAG_ORDER)


def zigzag_blocks(blocks: np.ndarray) -> np.ndarray:
    """(..., 8, 8) blocks -> (..., 64) zigzag-ordered vectors."""
    if blocks.shape[-2:] != (8, 8):
        raise CodecError(f"expected (..., 8, 8), got {blocks.shape}")
    flat = blocks.reshape(*blocks.shape[:-2], 64)
    return flat[..., ZIGZAG_ORDER]


def unzigzag_blocks(vectors: np.ndarray) -> np.ndarray:
    """(..., 64) zigzag vectors -> (..., 8, 8) blocks."""
    if vectors.shape[-1] != 64:
        raise CodecError(f"expected (..., 64), got {vectors.shape}")
    flat = vectors[..., INVERSE_ZIGZAG]
    return flat.reshape(*vectors.shape[:-1], 8, 8)
