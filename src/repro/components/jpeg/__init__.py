"""A from-scratch baseline-style mini-JPEG codec.

The JPiP application "has to decode the JPEG images" — entropy decoding
followed by per-field IDCT (paper Fig. 7 shows JPEG decode -> IDCT Y/U/V
as separate pipeline stages).  This package implements the whole codec on
numpy, structured so the decoder splits exactly along the paper's stage
boundary:

* :func:`~repro.components.jpeg.codec.encode_frame` — blocks, forward
  DCT, quantization, zigzag, DC prediction, RLE, canonical Huffman;
* :func:`~repro.components.jpeg.codec.entropy_decode_frame` — bitstream
  back to dequantized coefficient blocks (the "JPEG decode" component);
* :func:`~repro.components.jpeg.codec.idct_plane` — coefficients back to
  pixels (the "IDCT <field>" components), restrictable to a row range for
  data-parallel slices.

It is not wire-compatible with ITU T.81 (no markers, simplified chroma
handling) but performs the same mathematical work with the same
structure, which is what the reproduction needs (DESIGN.md §3).
"""

from repro.components.jpeg.dct import dct2_blocks, idct2_blocks
from repro.components.jpeg.quant import (
    CHROMA_QTABLE,
    LUMA_QTABLE,
    dequantize,
    quantize,
    scale_qtable,
)
from repro.components.jpeg.zigzag import ZIGZAG_ORDER, unzigzag_blocks, zigzag_blocks
from repro.components.jpeg.huffman import (
    BitReader,
    BitWriter,
    HuffmanCodec,
    build_canonical_codes,
)
from repro.components.jpeg.codec import (
    EncodedFrame,
    EncodedPlane,
    PlaneCoefficients,
    decode_frame,
    encode_frame,
    entropy_decode_frame,
    fused_dct_quant_zigzag,
    idct_plane,
)

__all__ = [
    "dct2_blocks",
    "idct2_blocks",
    "LUMA_QTABLE",
    "CHROMA_QTABLE",
    "scale_qtable",
    "quantize",
    "dequantize",
    "ZIGZAG_ORDER",
    "zigzag_blocks",
    "unzigzag_blocks",
    "BitWriter",
    "BitReader",
    "HuffmanCodec",
    "build_canonical_codes",
    "EncodedFrame",
    "EncodedPlane",
    "PlaneCoefficients",
    "encode_frame",
    "decode_frame",
    "entropy_decode_frame",
    "fused_dct_quant_zigzag",
    "idct_plane",
]
