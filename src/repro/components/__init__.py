"""Component library: the building blocks of the paper's applications.

Everything here is implemented from scratch on numpy:

* :mod:`repro.components.video` — planar YUV 4:2:0 frames, synthetic
  video generation, PSNR;
* :mod:`repro.components.filters` — the pixel kernels (down scaler,
  picture-in-picture blender, separable Gaussian blur) as pure functions;
* :mod:`repro.components.jpeg` — a baseline-style mini-JPEG codec (8x8
  DCT, quantization, zigzag, RLE + Huffman) so the JPiP application
  performs real entropy decoding and IDCT work;
* :mod:`repro.components.streaming` — the Hinch components wrapping the
  kernels (sources, per-field filters, blenders, sinks, event timers),
  each with a SpaceCAKE cost profile;
* :mod:`repro.components.registry` — the default class-name registry the
  XSPCL validator and the runtimes consume.
"""

from repro.components.registry import (
    DEFAULT_REGISTRY,
    default_ports,
    default_registry,
    register,
)
from repro.components.video import Frame, VideoClip, synthetic_clip

__all__ = [
    "DEFAULT_REGISTRY",
    "default_registry",
    "default_ports",
    "register",
    "Frame",
    "VideoClip",
    "synthetic_clip",
]
