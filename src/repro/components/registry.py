"""The default component-class registry.

The XSPCL ``class`` attribute names a component class; the registry maps
those names to implementations.  Two views exist:

* :func:`default_registry` — name -> Component subclass, consumed by the
  runtimes and by the SpaceCAKE cost model;
* :func:`default_ports`   — name -> :class:`PortSpec`, consumed by the
  validator/expander (which must not depend on implementations).

:func:`register` lets applications and tests add their own classes to a
copy without mutating the shared default.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.ports import PortSpec
from repro.errors import RegistryError
from repro.hinch.component import Component
from repro.components import streaming
from repro.components.skeletons import SKELETON_REGISTRY

__all__ = ["DEFAULT_REGISTRY", "default_registry", "default_ports", "register"]

DEFAULT_REGISTRY: dict[str, type[Component]] = {
    "video_source": streaming.VideoSource,
    "luma_source": streaming.LumaSource,
    "mjpeg_source": streaming.MjpegSource,
    "timer": streaming.TimerSource,
    "jpeg_decode": streaming.JpegDecode,
    "idct_field": streaming.IdctField,
    "downscale_field": streaming.DownscaleField,
    "blend_field": streaming.BlendField,
    "blur_h_field": streaming.BlurHField,
    "blur_v_field": streaming.BlurVField,
    "video_sink": streaming.VideoSink,
    "plane_sink": streaming.PlaneSink,
    "downscale_blend_field": streaming.DownscaleBlendField,
    "jpeg_decode_idct": streaming.JpegDecodeIdct,
    "idct_downscale_blend_field": streaming.IdctDownscaleBlendField,
    # skeletal template components (paper §6, future work)
    **SKELETON_REGISTRY,
}


def default_registry(
    extra: Mapping[str, type[Component]] | None = None,
) -> dict[str, type[Component]]:
    """A fresh copy of the default registry, optionally extended."""
    registry = dict(DEFAULT_REGISTRY)
    if extra:
        registry.update(extra)
    return registry


def default_ports(
    registry: Mapping[str, type[Component]] | None = None,
) -> dict[str, PortSpec]:
    """PortSpec view of a registry (for validate()/expand())."""
    reg = registry if registry is not None else DEFAULT_REGISTRY
    return {name: cls.ports for name, cls in reg.items()}


def register(
    name: str,
    cls: type[Component],
    *,
    registry: dict[str, type[Component]] | None = None,
    overwrite: bool = False,
) -> type[Component]:
    """Add a component class to ``registry`` (default: the shared one).

    Registering into the shared default requires ``overwrite`` for an
    existing name, to catch accidental clobbering.
    """
    target = registry if registry is not None else DEFAULT_REGISTRY
    if not overwrite and name in target:
        raise RegistryError(f"component class {name!r} already registered")
    if not (isinstance(cls, type) and issubclass(cls, Component)):
        raise RegistryError(f"{cls!r} is not a Component subclass")
    target[name] = cls
    return cls
