"""The default component-class registry, with pluggable implementations.

The XSPCL ``class`` attribute names an *abstract* component class; the
registry maps those names to implementations.  Each abstract name owns a
:class:`ComponentFamily` of one or more interchangeable implementations
(a reference numpy version, fused variants, externally registered ones)
that must all present the same interface: identical input/output ports
and an identical declared *format signature* (see
:mod:`repro.core.formats`).  Because formats are checked at registration
time, swapping the selected implementation can never change what the
format-reconciliation lint (X5xx) or the runtimes' buffer expectations
see.

Three views exist:

* :func:`default_registry` — name -> Component subclass, consumed by the
  runtimes and by the SpaceCAKE cost model; ``impls={"name": "impl"}``
  selects a non-default implementation per family;
* :func:`default_ports`   — name -> :class:`PortSpec`, consumed by the
  validator/expander (which must not depend on implementations);
* :data:`FAMILIES`        — name -> :class:`ComponentFamily`, the full
  implementation table behind the other two.

:func:`register` lets applications and tests add their own classes — to
a private registry, to the shared default, or as an alternative
implementation of an existing family (``impl="..."``).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.formats import parse_format
from repro.core.ports import PortSpec
from repro.errors import RegistryError
from repro.hinch.component import Component
from repro.components import audio, streaming
from repro.components.skeletons import SKELETON_REGISTRY

__all__ = [
    "DEFAULT_REGISTRY",
    "FAMILIES",
    "ComponentFamily",
    "default_registry",
    "default_ports",
    "register",
    "implementations",
]


class ComponentFamily:
    """All interchangeable implementations of one abstract class name.

    The first registered implementation is the reference: its ports and
    format signature define the family interface every later
    implementation must match.
    """

    def __init__(self, name: str, impl: str, cls: type[Component]) -> None:
        self.name = name
        self.default = impl
        self.impls: dict[str, type[Component]] = {impl: cls}

    @property
    def reference(self) -> type[Component]:
        return self.impls[self.default]

    def add(
        self, impl: str, cls: type[Component], *, overwrite: bool = False
    ) -> None:
        if not overwrite and impl in self.impls:
            raise RegistryError(
                f"implementation {impl!r} of component class {self.name!r} "
                "already registered"
            )
        check_interface(self.name, self.reference, cls, impl=impl)
        self.impls[impl] = cls

    def get(self, impl: str) -> type[Component]:
        try:
            return self.impls[impl]
        except KeyError:
            raise RegistryError(
                f"component class {self.name!r} has no implementation "
                f"{impl!r}; available: {sorted(self.impls)}"
            ) from None


def check_interface(
    name: str,
    reference: type[Component],
    cls: type[Component],
    *,
    impl: str | None = None,
) -> None:
    """Check ``cls`` presents the same interface as ``reference``.

    Alternative implementations must expose identical input/output port
    sets and, where both sides declare a port format, semantically equal
    declarations (:func:`repro.core.formats.parse_format` equality, so
    whitespace/key order do not matter).  Raises :class:`RegistryError`
    naming the diverging port.
    """
    what = (
        f"implementation {impl!r} of component class {name!r}"
        if impl is not None
        else f"component class {name!r}"
    )
    ref_ports: PortSpec = reference.ports
    new_ports: PortSpec = cls.ports
    if impl is not None:
        for prop in ("inputs", "outputs"):
            ref_set = set(getattr(ref_ports, prop))
            new_set = set(getattr(new_ports, prop))
            if ref_set != new_set:
                diverging = sorted(ref_set ^ new_set)[0]
                raise RegistryError(
                    f"{what} diverges from the family interface on port "
                    f"{diverging!r}: {prop} {sorted(new_set)} != "
                    f"{sorted(ref_set)}"
                )
    for port in sorted(set(ref_ports.formats) & set(new_ports.formats)):
        if parse_format(ref_ports.formats[port]) != parse_format(
            new_ports.formats[port]
        ):
            raise RegistryError(
                f"{what} diverges from the declared format signature on "
                f"port {port!r}: {new_ports.formats[port]!r} != "
                f"{ref_ports.formats[port]!r}"
            )


def _families(entries: Mapping[str, type[Component]]) -> dict[str, ComponentFamily]:
    return {
        name: ComponentFamily(name, "numpy", cls) for name, cls in entries.items()
    }


DEFAULT_REGISTRY: dict[str, type[Component]] = {
    "video_source": streaming.VideoSource,
    "luma_source": streaming.LumaSource,
    "mjpeg_source": streaming.MjpegSource,
    "timer": streaming.TimerSource,
    "jpeg_decode": streaming.JpegDecode,
    "idct_field": streaming.IdctField,
    "downscale_field": streaming.DownscaleField,
    "blend_field": streaming.BlendField,
    "blur_h_field": streaming.BlurHField,
    "blur_v_field": streaming.BlurVField,
    "video_sink": streaming.VideoSink,
    "plane_sink": streaming.PlaneSink,
    "convert_plane": streaming.ConvertPlane,
    "downscale_blend_field": streaming.DownscaleBlendField,
    "jpeg_decode_idct": streaming.JpegDecodeIdct,
    "idct_downscale_blend_field": streaming.IdctDownscaleBlendField,
    # audio / sensor-fusion front-end (small records, high rate)
    "audio_source": audio.AudioSource,
    "band_filter": audio.BandFilter,
    "fuse_sensors": audio.FuseSensors,
    "feature_sink": audio.FeatureSink,
    # skeletal template components (paper §6, future work)
    **SKELETON_REGISTRY,
}

#: Implementation table: abstract name -> family of registered impls.
FAMILIES: dict[str, ComponentFamily] = _families(DEFAULT_REGISTRY)
FAMILIES["downscale_field"].add("strided", streaming.DownscaleFieldStrided)


def implementations(name: str) -> dict[str, type[Component]]:
    """Registered implementations of one abstract class name."""
    try:
        return dict(FAMILIES[name].impls)
    except KeyError:
        raise RegistryError(f"unknown component class {name!r}") from None


def default_registry(
    extra: Mapping[str, type[Component]] | None = None,
    *,
    impls: Mapping[str, str] | None = None,
) -> dict[str, type[Component]]:
    """A fresh copy of the default registry, optionally extended.

    ``impls`` selects a non-default implementation per abstract name
    (e.g. ``{"downscale_field": "strided"}``); unknown names or
    implementations raise :class:`RegistryError`.
    """
    registry = dict(DEFAULT_REGISTRY)
    if impls:
        for name, impl in impls.items():
            family = FAMILIES.get(name)
            if family is None:
                raise RegistryError(
                    f"unknown component class {name!r} in implementation "
                    "selection"
                )
            registry[name] = family.get(impl)
    if extra:
        registry.update(extra)
    return registry


def default_ports(
    registry: Mapping[str, type[Component]] | None = None,
) -> dict[str, PortSpec]:
    """PortSpec view of a registry (for validate()/expand())."""
    reg = registry if registry is not None else DEFAULT_REGISTRY
    return {name: cls.ports for name, cls in reg.items()}


def register(
    name: str,
    cls: type[Component],
    *,
    impl: str | None = None,
    registry: dict[str, type[Component]] | None = None,
    overwrite: bool = False,
) -> type[Component]:
    """Add a component class to ``registry`` (default: the shared one).

    Registering into the shared default requires ``overwrite`` for an
    existing name, to catch accidental clobbering.  When a name is
    overwritten, the new class must agree with the previous one on every
    port format both declare (diverging formats raise
    :class:`RegistryError` naming the port).

    ``impl`` registers ``cls`` as an *alternative implementation* of an
    existing family instead of replacing the visible default: the class
    must match the family's port and format interface, and becomes
    selectable via ``default_registry(impls={name: impl})``.
    """
    if not (isinstance(cls, type) and issubclass(cls, Component)):
        raise RegistryError(f"{cls!r} is not a Component subclass")
    if impl is not None:
        if registry is not None:
            raise RegistryError(
                "impl registration targets the shared family table; "
                "it cannot be combined with a private registry"
            )
        family = FAMILIES.get(name)
        if family is None:
            raise RegistryError(
                f"unknown component class {name!r}: register the default "
                "implementation first"
            )
        family.add(impl, cls, overwrite=overwrite)
        return cls
    target = registry if registry is not None else DEFAULT_REGISTRY
    if name in target:
        if not overwrite:
            raise RegistryError(f"component class {name!r} already registered")
        check_interface(name, target[name], cls)
    target[name] = cls
    if registry is None:
        family = FAMILIES.get(name)
        if family is None:
            FAMILIES[name] = ComponentFamily(name, "numpy", cls)
        else:
            family.impls[family.default] = cls
    return cls
