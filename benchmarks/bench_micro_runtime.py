"""MICRO — substrate microbenchmarks: Hinch primitives.

Wall-clock throughput of the runtime building blocks (streams, event
queues, the central job queue, scheduler step, expansion).  These are
pytest-benchmark timings of our Python implementation — useful for
spotting regressions in the reproduction itself, not cycle claims.
"""

from __future__ import annotations

import numpy as np

from repro.core import AppBuilder, expand
from repro.hinch import Event, EventBroker, Stream
from repro.hinch.jobqueue import Job, JobQueue
from repro.hinch.scheduler import DataflowScheduler

from tests.hinch.helpers import PORTS


def _linear_program(stages: int = 10):
    b = AppBuilder()
    main = b.procedure("main")
    main.component("src", "producer", streams={"output": "s0"})
    for i in range(stages):
        main.component(
            f"f{i}", "doubler", streams={"input": f"s{i}", "output": f"s{i+1}"}
        )
    main.component("snk", "collector", streams={"input": f"s{stages}"})
    return expand(b.build(), PORTS)


def bench_stream_put_get(benchmark):
    stream = Stream("x")
    payload = np.zeros(1024)

    def op(it=[0]):
        k = it[0]
        it[0] += 1
        stream.put(k, payload)
        stream.get(k)
        stream.release(k)

    benchmark(op)


def bench_stream_sliced_buffer(benchmark):
    stream = Stream("x")

    def op(it=[0]):
        k = it[0]
        it[0] += 1
        for i in range(8):
            buf = stream.ensure_buffer(k, lambda: np.zeros(256))
            buf[i * 32 : (i + 1) * 32] = i
        stream.release(k)

    benchmark(op)


def bench_event_queue_post_poll(benchmark):
    broker = EventBroker()

    def op():
        for i in range(16):
            broker.post("q", Event("e", payload=i))
        assert len(broker.queue("q").poll()) == 16

    benchmark(op)


def bench_job_queue_throughput(benchmark):
    queue = JobQueue()
    jobs = [Job(iteration=0, node_id=f"n{i}") for i in range(64)]

    def op():
        queue.push_all(jobs)
        for _ in range(64):
            queue.try_pop()

    benchmark(op)


def bench_scheduler_full_run(benchmark):
    program = _linear_program(stages=10)

    def run():
        sched = DataflowScheduler(
            program.build_graph(), pipeline_depth=5, max_iterations=50
        )
        frontier = list(sched.start())
        count = 0
        while frontier:
            job = frontier.pop()
            count += 1
            frontier.extend(sched.complete(job))
        assert sched.done
        return count

    assert benchmark(run) == 12 * 50


def bench_sim_runtime_pip2(benchmark):
    """The simulator fast path: PiP-2 on 4 nodes, cost-only.

    This is the reference wall-clock metric for the precompiled job-plan
    optimization (docs/performance.md): unsliced components drive full
    64-bucket traffic runs through the cache model under real core
    contention.
    """
    from repro.apps import build_pip, make_program
    from repro.components.registry import default_registry
    from repro.spacecake import SimRuntime

    program = make_program(build_pip(2), name="pip2")
    registry = default_registry()

    def run():
        return SimRuntime(
            program, registry, nodes=4, pipeline_depth=5, max_iterations=24
        ).run()

    result = benchmark(run)
    assert result.completed_iterations == 24


def bench_sim_runtime_jpip2(benchmark):
    """Sliced-component stress: many short bucket runs per job."""
    from repro.apps import build_jpip, make_program
    from repro.components.registry import default_registry
    from repro.spacecake import SimRuntime

    program = make_program(build_jpip(2), name="jpip2")
    registry = default_registry()

    def run():
        return SimRuntime(
            program, registry, nodes=4, pipeline_depth=5, max_iterations=6
        ).run()

    result = benchmark(run)
    assert result.completed_iterations == 6


def bench_sim_runtime_reconfig_pip12(benchmark):
    """Reconfiguration drain + JobPlan rebuilds on every toggle."""
    from repro.apps import build_pip, make_program
    from repro.components.registry import default_registry
    from repro.spacecake import SimRuntime

    program = make_program(
        build_pip(2, reconfigurable=True, period=12), name="pip12"
    )
    registry = default_registry()

    def run():
        return SimRuntime(
            program, registry, nodes=4, pipeline_depth=5, max_iterations=48
        ).run()

    result = benchmark(run)
    assert result.completed_iterations == 48
    assert result.reconfig_count > 0


def bench_cache_access_traffic(benchmark):
    """The cache model's batched inner loop, in isolation."""
    from repro.spacecake.cache import CacheModel

    cache = CacheModel(cores=4)
    traffic = tuple(
        (f"s{i}", 0, 64, 256, i % 2 == 0) for i in range(4)
    )

    def op(it=[0]):
        k = it[0]
        it[0] += 1
        keyset = set()
        cache.access_traffic(k % 4, k, traffic, 0.0, keyset)
        cache.evict_many(keyset)

    benchmark(op)


def bench_expansion_pip2(benchmark):
    from repro.apps import build_pip, make_program

    spec = build_pip(2)
    benchmark(lambda: make_program(spec, name="pip"))


def bench_build_graph_jpip(benchmark):
    from repro.apps import build_jpip, make_program

    program = make_program(build_jpip(2), name="jpip")
    graph = benchmark(lambda: program.build_graph().graph)
    assert len(graph) > 500
