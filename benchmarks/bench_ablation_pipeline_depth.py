"""ABL-2 — pipeline depth ablation.

The paper fixes five concurrent iterations ("To exploit pipeline
parallelism ... five iterations are simultaneously scheduled").  This
sweep shows why: at depth 1 a multi-node machine starves between
iterations; returns diminish beyond the point where dependencies, not
admission, bound concurrency.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.figures import ablation_pipeline_depth


def bench_ablation_pipeline_depth(benchmark, harness, out_dir):
    figure = benchmark.pedantic(
        lambda: ablation_pipeline_depth(harness), rounds=1, iterations=1
    )
    emit(out_dir, "abl2_pipeline_depth", figure.render())
    cycles = [row[3] for row in figure.rows]
    depths = [row[2] for row in figure.rows]
    # deeper pipeline never slower, and depth 5 clearly beats depth 1
    assert cycles == sorted(cycles, reverse=True) or min(cycles) == cycles[-1]
    d1 = cycles[depths.index(1)]
    d5 = cycles[depths.index(5)]
    assert d5 < d1 * 0.8
