"""FIG8 — Figure 8: sequential overhead of XSPCL vs hand-written code.

Regenerates the paper's Figure 8 series: total cycles of each application
variant in its XSPCL form (1 node, pipeline depth 5, Hinch overheads) and
its fused sequential form (no runtime), for PiP-1/2, JPiP-1/2,
Blur-3x3/5x5 over 96/24 frames.

Paper headline: PiP ~5%, JPiP ~18% (cache misses from stream buffering),
Blur ~0 (<1.1%, noise).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.figures import fig8_sequential_overhead
from repro.bench.harness import STATIC_VARIANTS


def bench_fig8_sequential_overhead(benchmark, harness, out_dir):
    figure = benchmark.pedantic(
        lambda: fig8_sequential_overhead(harness), rounds=1, iterations=1
    )
    emit(out_dir, "fig8", figure.render())
    assert len(figure.rows) == len(STATIC_VARIANTS)
    overheads = {row[0]: float(row[3].rstrip("%")) / 100 for row in figure.rows}
    # shape assertions, mirroring tests/test_calibration.py
    assert overheads["JPiP-1"] > overheads["PiP-1"]
    assert abs(overheads["Blur-3x3"]) < 0.05


def bench_fig8_pip1_xspcl_run(benchmark, harness):
    """Raw simulation cost of the PiP-1 XSPCL variant (fresh run)."""
    from repro.bench.harness import PIPELINE_DEPTH
    from repro.spacecake import SimRuntime

    def run():
        return SimRuntime(
            harness.program("PiP-1", "xspcl"),
            harness.registry,
            nodes=1,
            pipeline_depth=PIPELINE_DEPTH,
            max_iterations=harness.frames("PiP-1"),
            cost_params=harness.cost_params,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.completed_iterations == harness.frames("PiP-1")
