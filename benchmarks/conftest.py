"""Shared fixtures for the benchmark suite.

``REPRO_BENCH_SCALE`` (default 1.0) scales the per-variant frame counts;
set it below 1 for quick smoke runs (CI) — the paper-scale figures use
the full 96/24 frames.

Rendered figures are written to ``benchmarks/out/`` so a benchmark run
leaves the regenerated tables/charts on disk next to the timings.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import Harness

OUT_DIR = Path(__file__).parent / "out"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def harness() -> Harness:
    """One memoized harness for the whole benchmark session."""
    return Harness(frames_scale=bench_scale())


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(out_dir: Path, name: str, text: str) -> None:
    """Write a rendered figure and echo it to stdout (visible with -s)."""
    (out_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
