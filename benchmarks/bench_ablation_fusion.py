"""ABL-1 — fusion ablation (paper §4.1 discussion).

"This issue can be addressed in future versions by grouping several
components into a group that is scheduled as one entity. ...  However,
this approach reduces the amount of parallelism in the application so it
might degrade the parallel performance.  Choosing the right balance is
subject to further research."

We run both structures (split stages vs fused stages) under the same
Hinch runtime at several node counts: fusion wins at 1 node (fewer cache
misses), splitting wins at scale (more parallelism).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.figures import ablation_fusion


def bench_ablation_fusion(benchmark, harness, out_dir):
    figure = benchmark.pedantic(
        lambda: ablation_fusion(harness), rounds=1, iterations=1
    )
    emit(out_dir, "abl1_fusion", figure.render())
    by_key = {(row[0], row[1]): (row[2], row[3], row[4]) for row in figure.rows}
    for variant in ("PiP-2", "JPiP-1"):
        split1, _, fused1 = by_key[(variant, 1)]
        split9, _, fused9 = by_key[(variant, 9)]
        assert fused1 < split1, f"{variant}: fusion should win at 1 node"
        assert split9 < fused9, f"{variant}: splitting should win at 9 nodes"
    # §4.1 grouping (JPiP only): cuts cycles at 1 node via cache reuse,
    # while retaining (most of) the parallelism at scale
    split1, grouped1, _ = by_key[("JPiP-1", 1)]
    assert grouped1 < split1, "grouping should win at 1 node"
