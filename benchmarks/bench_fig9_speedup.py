"""FIG9 — Figure 9: speedup on the SpaceCAKE tile, 1..9 nodes.

Regenerates the paper's speedup curves for all six static variants,
relative to the fastest sequential version of each application ("For
Blur, this is the parallel version"); at one node all synchronization
operations are disabled.

Paper headline: good efficiency everywhere; JPiP worst; Blur best.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.figures import fig9_speedup


def bench_fig9_speedup(benchmark, harness, out_dir):
    figure = benchmark.pedantic(
        lambda: fig9_speedup(harness), rounds=1, iterations=1
    )
    emit(out_dir, "fig9", figure.render())
    speedups = {row[0]: [float(v) for v in row[1:]] for row in figure.rows}
    assert speedups["Blur-5x5"][-1] > speedups["JPiP-1"][-1]
    for name, series in speedups.items():
        assert series[3] > 2.5, f"{name} scales poorly at 4 nodes: {series}"


def bench_fig9_single_point_pip1_9nodes(benchmark, harness):
    """Raw cost of one multi-node simulation (PiP-1 at 9 nodes)."""
    from repro.bench.harness import PIPELINE_DEPTH
    from repro.spacecake import SimRuntime

    def run():
        return SimRuntime(
            harness.program("PiP-1", "xspcl"),
            harness.registry,
            nodes=9,
            pipeline_depth=PIPELINE_DEPTH,
            max_iterations=harness.frames("PiP-1"),
            cost_params=harness.cost_params,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.utilization > 0.4
