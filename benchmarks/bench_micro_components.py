"""MICRO — substrate microbenchmarks: pixel kernels and the JPEG codec.

Throughput of the numpy kernels and the from-scratch mini-JPEG codec on
realistic plane sizes.
"""

from __future__ import annotations

import numpy as np

from repro.components.filters import (
    blend_plane,
    blur_plane_horizontal,
    blur_plane_vertical,
    downscale_plane,
    gaussian_kernel_1d,
)
from repro.components.jpeg import (
    decode_frame,
    encode_frame,
    entropy_decode_frame,
    idct_plane,
)
from repro.components.video import synthetic_clip, synthetic_frame


def bench_synthetic_frame_720x576(benchmark):
    benchmark(lambda: synthetic_frame(3, 720, 576))


def bench_downscale_720x576_x4(benchmark):
    plane = synthetic_frame(0, 720, 576).y
    benchmark(lambda: downscale_plane(plane, 4))


def bench_blend_720x576(benchmark):
    bg = synthetic_frame(0, 720, 576, seed=1).y
    overlay = downscale_plane(synthetic_frame(0, 720, 576, seed=2).y, 4)
    benchmark(lambda: blend_plane(bg, overlay, (16, 16)))


def bench_blur_360x288_5x5(benchmark):
    plane = synthetic_frame(0, 360, 288).y
    kernel = gaussian_kernel_1d(5, 1.0)

    def op():
        return blur_plane_vertical(blur_plane_horizontal(plane, kernel), kernel)

    benchmark(op)


def bench_jpeg_encode_160x128(benchmark):
    frame = synthetic_clip(160, 128, 1, seed=4, detail=0.3)[0]
    benchmark(lambda: encode_frame(frame, quality=75))


def bench_jpeg_entropy_decode_160x128(benchmark):
    frame = synthetic_clip(160, 128, 1, seed=4, detail=0.3)[0]
    encoded = encode_frame(frame, quality=75)
    benchmark(lambda: entropy_decode_frame(encoded))


def bench_jpeg_idct_160x128(benchmark):
    frame = synthetic_clip(160, 128, 1, seed=4, detail=0.3)[0]
    coeffs = entropy_decode_frame(encode_frame(frame, quality=75))["y"]
    benchmark(lambda: idct_plane(coeffs))


def bench_jpeg_full_decode_160x128(benchmark):
    frame = synthetic_clip(160, 128, 1, seed=4, detail=0.3)[0]
    encoded = encode_frame(frame, quality=75)
    decoded = benchmark(lambda: decode_frame(encoded))
    assert decoded.width == 160
