"""ABL-4 — heterogeneous tiles (the paper's Cell direction, §6).

Sweeps Cell-like tiles (one baseline core + N fast vector engines)
against homogeneous tiles of the same core count on the PiP and Blur
applications: compute-heavy Blur profits almost linearly from faster
cores, while PiP's larger memory share caps the gain — the per-core-type
version of the paper's compute/communication-ratio argument.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.harness import PIPELINE_DEPTH
from repro.bench.report import format_table
from repro.spacecake import MachineConfig, SimRuntime


def _run(harness, variant, machine):
    return SimRuntime(
        harness.program(variant, "xspcl"),
        harness.registry,
        nodes=machine.nodes,
        pipeline_depth=PIPELINE_DEPTH,
        max_iterations=harness.frames(variant),
        cost_params=harness.cost_params,
        machine=machine,
    ).run()


def bench_ablation_heterogeneous(benchmark, harness, out_dir):
    def sweep():
        rows = []
        for variant in ("PiP-1", "Blur-5x5"):
            homogeneous = _run(harness, variant, MachineConfig(nodes=4))
            cellish = _run(
                harness, variant,
                MachineConfig(nodes=4, core_speeds=(1.0, 4.0, 4.0, 4.0)),
            )
            rows.append(
                (
                    variant,
                    homogeneous.cycles / 1e6,
                    cellish.cycles / 1e6,
                    homogeneous.cycles / cellish.cycles,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ("variant", "4x1.0 Mcyc", "1+3x4.0 Mcyc", "Cell-ish gain"),
        rows,
        title="ABL-4: homogeneous vs Cell-like tile (4 cores)",
    )
    emit(out_dir, "abl4_heterogeneous", text)
    gains = {row[0]: row[3] for row in rows}
    # every app gains from the faster engines...
    assert all(g > 1.0 for g in gains.values())
    # ...but the compute-dominated app gains more
    assert gains["Blur-5x5"] > gains["PiP-1"]
