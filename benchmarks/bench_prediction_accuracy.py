"""PRED — prediction accuracy: PAMELA/SPC estimate vs simulation.

The framework position of XSPCL (paper Fig. 1) feeds the specification
to a performance estimation tool; this bench quantifies how close the
analytic SPC evaluation comes to the event-driven simulation across
applications and node counts.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.figures import prediction_accuracy


def bench_prediction_accuracy(benchmark, harness, out_dir):
    figure = benchmark.pedantic(
        lambda: prediction_accuracy(harness), rounds=1, iterations=1
    )
    emit(out_dir, "prediction_accuracy", figure.render())
    for row in figure.rows:
        error = abs(float(row[4].rstrip("%"))) / 100
        assert error < 0.40, f"{row[0]}@{row[1]}: error {error:.0%}"
