"""FIG10 — Figure 10: reconfiguration overhead, 1..9 nodes.

Regenerates the paper's reconfiguration experiment: PiP-12 / JPiP-12
toggle their second picture-in-picture every 12 frames, Blur-35 switches
kernels every 12 frames; run time is divided by the (exposure-weighted)
static baseline.

Paper headline: overhead below 15% despite frequent reconfiguration;
grows with node count because draining serializes the machine; small
non-monotonic variations occur.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.figures import fig10_reconfiguration_overhead


def bench_fig10_reconfiguration(benchmark, harness, out_dir):
    figure = benchmark.pedantic(
        lambda: fig10_reconfiguration_overhead(harness), rounds=1, iterations=1
    )
    emit(out_dir, "fig10", figure.render())
    for row in figure.rows:
        overheads = [float(v.rstrip("%")) for v in row[1:]]
        assert max(overheads) < 20.0, f"{row[0]}: {overheads}"
        # grows with nodes (low third vs high third)
        assert sum(overheads[-3:]) >= sum(overheads[:3]), f"{row[0]}: {overheads}"


def bench_fig10_single_reconfig_run(benchmark, harness):
    """Raw cost of one reconfigurable simulation (Blur-35 at 4 nodes)."""
    from repro.bench.harness import PIPELINE_DEPTH
    from repro.spacecake import SimRuntime

    def run():
        return SimRuntime(
            harness.program("Blur-35", "xspcl"),
            harness.registry,
            nodes=4,
            pipeline_depth=PIPELINE_DEPTH,
            max_iterations=harness.frames("Blur-35"),
            cost_params=harness.cost_params,
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.reconfig_count >= 2
