"""ABL-3 — SP-ization penalty (paper §3.3).

Crossdep regions are deliberately non-SP; converting them to SP form
(synchronization point between the parblocks) enables prediction but
forfeits the overlap between the blur phases.  The penalty is the price
the paper's Fig. 5 structure avoids.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.bench.figures import ablation_spization


def bench_ablation_spization(benchmark, harness, out_dir):
    figure = benchmark.pedantic(
        lambda: ablation_spization(harness), rounds=1, iterations=1
    )
    emit(out_dir, "abl3_spization", figure.render())
    for row in figure.rows:
        nodes, crossdep, sp = row[0], row[1], row[2]
        # SP form is never faster than crossdep
        assert sp >= crossdep * 0.999, f"nodes={nodes}: sp {sp} < crossdep {crossdep}"
