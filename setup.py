"""Legacy setup shim.

Kept so ``pip install -e .`` works on environments whose setuptools lacks
the PEP 660 editable-wheel path (e.g. no ``wheel`` package available
offline).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
