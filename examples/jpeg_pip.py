#!/usr/bin/env python
"""JPEG Picture-in-Picture: compressed inputs through the full pipeline.

Demonstrates the JPiP application (paper Fig. 7): MJPEG sources, the
from-scratch entropy decoder, per-field IDCT with data-parallel slices,
downscale + blend, all coordinated by XSPCL.  Also shows the codec in
isolation and the decode stage's effect on parallel scaling (JPEG decode
is inherently serial, which is why JPiP scales worst in the paper).

Run:  python examples/jpeg_pip.py
"""

from repro.apps import build_jpip, make_program
from repro.bench.report import format_table
from repro.components.jpeg import decode_frame, encode_frame
from repro.components.registry import default_registry
from repro.components.video import psnr, synthetic_frame
from repro.hinch import ThreadedRuntime
from repro.spacecake import SimRuntime

WIDTH, HEIGHT, FACTOR, SLICES, FRAMES = 128, 96, 4, 4, 4

# -- the codec on its own ----------------------------------------------------
frame = synthetic_frame(0, WIDTH, HEIGHT, seed=42, detail=0.3)
encoded = encode_frame(frame, quality=80)
decoded = decode_frame(encoded)
print(f"mini-JPEG: {frame.nbytes} B raw -> {encoded.nbytes} B compressed "
      f"({frame.nbytes / encoded.nbytes:.1f}x), PSNR {psnr(frame, decoded):.1f} dB")

# -- the full application ------------------------------------------------------
spec = build_jpip(
    1, width=WIDTH, height=HEIGHT, pip_height=HEIGHT, factor=FACTOR,
    slices=SLICES, frames=FRAMES, collect=True,
)
program = make_program(spec, name="jpip-demo")
print(f"\nJPiP expanded: {len(program.components)} component instances "
      f"(decode, {SLICES}-sliced IDCT/downscale/blend per field)")

result = ThreadedRuntime(
    program, default_registry(), nodes=2, pipeline_depth=2,
    max_iterations=FRAMES,
).run()
frames = result.components["sink"].ordered_frames()
print(f"decoded and composited {len(frames)} frames in "
      f"{result.elapsed_seconds:.2f}s")

# -- why JPiP scales worst: the serial decode stage ----------------------------
rows = []
base = None
for nodes in (1, 2, 4, 8):
    sim = SimRuntime(
        program, default_registry(), nodes=nodes, pipeline_depth=5,
        max_iterations=FRAMES,
    ).run()
    base = base or sim.cycles
    rows.append((nodes, sim.cycles / 1e6, f"{base / sim.cycles:.2f}x"))
print()
print(format_table(("nodes", "Mcycles", "speedup"), rows,
                   title="JPiP scaling (entropy decode stays serial)"))
