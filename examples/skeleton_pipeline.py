#!/usr/bin/env python
"""Skeletal parallelism: template components (paper §6, implemented).

Builds a video-analysis pipeline entirely out of *template* components —
map / stencil / reduce / monitor skeletons configured by initialization
parameters, including a custom user-registered kernel — then lets a
monitor-driven manager enable a binarize stage when the scene gets
bright, closing the loop of "events can be used to respond to special
input values" (§2.3b).

Run:  python examples/skeleton_pipeline.py
"""

import numpy as np

from repro.components.registry import default_ports, default_registry
from repro.components.skeletons import register_kernel
from repro.core import AppBuilder, expand
from repro.core.ports import PortSpec
from repro.hinch import Component, ThreadedRuntime

W, H, FRAMES = 96, 64, 12


# A user-defined kernel joins the template family with one decorator.
@register_kernel("posterize", cycles_per_pixel=1.5)
def posterize(block, *, levels: int = 4):
    step = 256 // int(levels)
    return ((block // step) * step).astype(block.dtype)


# A scripted source whose brightness ramps up over time (drives the
# monitor); alternating rows give the edge stencil something to find.
class RampSource(Component):
    ports = PortSpec(outputs=("output",), optional_params=("width", "height"))

    def run(self, job):
        level = min(30 + job.iteration * 20, 230)
        plane = np.zeros((H, W), dtype=np.uint8)
        plane[::4] = level  # stripes: mean = level/4, strong edges
        job.write("output", plane)


registry = default_registry({"ramp_source": RampSource})
ports = default_ports(registry)

b = AppBuilder()
main = b.procedure("main")
main.component("src", "ramp_source", streams={"output": "raw"})
with main.parallel("slice", n=4):
    main.component("poster", "map_plane",
                   streams={"input": "raw", "output": "art"},
                   params={"width": W, "height": H,
                           "kernel": "posterize", "levels": 8})
with main.parallel("crossdep", n=4):
    with main.parblock():
        main.component("pre", "map_plane",
                       streams={"input": "art", "output": "pre"},
                       params={"width": W, "height": H, "kernel": "identity"})
    with main.parblock():
        main.component("edges", "stencil_plane",
                       streams={"input": "pre", "output": "edged"},
                       params={"width": W, "height": H, "kernel": "edge",
                               "halo": 1})
main.component("watch", "monitor",
               streams={"input": "raw", "output": "passthru"},
               params={"width": W, "height": H, "op": "mean",
                       "threshold": 30, "queue": "scene", "event": "bright"})
with main.manager("m", queue="scene") as mgr:
    mgr.on("bright", "enable", option="binarized")
    with main.option("binarized", enabled=False,
                     bypass=[("edged", "final")]):
        main.component("bin", "map_plane",
                       streams={"input": "edged", "output": "final"},
                       params={"width": W, "height": H,
                               "kernel": "binarize", "threshold": 40})
main.component("sink", "plane_sink", streams={"input": "final"},
               params={"width": W, "height": H, "collect": True})

program = expand(b.build(), ports, name="skeletons")
print(f"pipeline of {len(program.components)} template-component instances")

runtime = ThreadedRuntime(program, registry, nodes=2, pipeline_depth=2,
                          max_iterations=FRAMES)
result = runtime.run()
print(f"ran {result.completed_iterations} frames, "
      f"{result.reconfig_count} reconfiguration(s) "
      f"(binarize enabled when mean luminance crossed 30)")
planes = result.components["sink"].ordered_planes()
binary_frames = [
    k for k, p in enumerate(planes)
    if 255 in p and set(np.unique(p)) <= {0, 255}
]
print(f"frames that went through the binarize option: {binary_frames}")
assert binary_frames, "the monitor should have enabled binarization"
assert binary_frames[0] > 0, "early dark frames must pass through unbinarized"
print("monitor-driven reconfiguration verified ✓")
