#!/usr/bin/env python
"""Dynamic reconfiguration: switching blur kernels while streaming.

Shows the manager/option machinery of XSPCL live: the Blur-35 variant
holds both the 3x3 and the 5x5 kernel pipelines as options of one
manager; a timer component posts an event every few frames; the manager
halts the subgraph, splices components, and resumes — all while the
application keeps producing frames.  Also injects a user event from the
outside, like a key press.

Run:  python examples/reconfigurable_blur.py
"""

import numpy as np

from repro.apps import build_blur, make_program
from repro.components.filters import (
    blur_plane_horizontal,
    blur_plane_vertical,
    gaussian_kernel_1d,
)
from repro.components.registry import default_registry
from repro.components.video import synthetic_frame
from repro.hinch import ThreadedRuntime

WIDTH, HEIGHT, SLICES, FRAMES, PERIOD = 96, 72, 3, 18, 4

spec = build_blur(
    reconfigurable=True, period=PERIOD, width=WIDTH, height=HEIGHT,
    slices=SLICES, frames=FRAMES, collect=True,
)
program = make_program(spec, name="blur35-demo")
print(f"Blur-35: options {sorted(program.options)} managed by "
      f"{sorted(program.managers)}")

runtime = ThreadedRuntime(
    program, default_registry(), nodes=2, pipeline_depth=2,
    max_iterations=FRAMES,
)
result = runtime.run()
print(f"ran {result.completed_iterations} frames with "
      f"{result.reconfig_count} reconfigurations")
print("reconfiguration timeline (iteration -> enabled options):")
for resume, states in runtime.reconfig_log:
    enabled = [k for k, v in states.items() if v]
    print(f"  iteration {resume:3d}: {enabled}")

# classify each output frame against both reference kernels
raw = {k: synthetic_frame(k, WIDTH, HEIGHT, seed=300).y for k in range(FRAMES)}
refs = {}
for size in (3, 5):
    kern = gaussian_kernel_1d(size, 1.0)
    refs[size] = {
        k: blur_plane_vertical(blur_plane_horizontal(raw[k], kern), kern)
        for k in range(FRAMES)
    }
timeline = []
for k, plane in enumerate(result.components["sink"].ordered_planes()):
    for size in (3, 5):
        if np.array_equal(plane, refs[size][k]):
            timeline.append(str(size))
            break
    else:
        timeline.append("?")
print("per-frame kernel used:", " ".join(timeline))
assert "?" not in timeline
assert {"3", "5"} <= set(timeline), "both kernels should appear"
print("every frame matches exactly one reference kernel ✓")
