#!/usr/bin/env python
"""Heterogeneous tiles: the paper's Cell direction (paper §6, implemented).

"First, we will investigate how we can develop efficient applications
for the Cell processor, which has fast specialized vector engines."

The SpaceCAKE machine model accepts per-core speed multipliers; this
example compares the Blur application on homogeneous tiles against
Cell-like tiles (one slow control core + fast vector engines), and shows
that memory-bound stages stop profiting from faster cores.

Run:  python examples/heterogeneous_tile.py
"""

from repro.apps import build_blur, make_program
from repro.bench.report import format_table
from repro.components.registry import default_registry
from repro.spacecake import MachineConfig, SimRuntime

FRAMES = 48
program = make_program(build_blur(5), name="blur5")
registry = default_registry()

CONFIGS = [
    ("1x TriMedia", MachineConfig(nodes=1)),
    ("4x TriMedia", MachineConfig(nodes=4)),
    ("8x TriMedia", MachineConfig(nodes=8)),
    ("Cell-ish: 1 PPE + 3 SPE(4x)",
     MachineConfig(nodes=4, core_speeds=(1.0, 4.0, 4.0, 4.0))),
    ("Cell-ish: 1 PPE + 7 SPE(4x)",
     MachineConfig(nodes=8, core_speeds=(1.0,) + (4.0,) * 7)),
]

rows = []
base = None
for label, machine in CONFIGS:
    result = SimRuntime(
        program, registry, nodes=machine.nodes, pipeline_depth=5,
        max_iterations=FRAMES, machine=machine,
    ).run()
    base = base or result.cycles
    rows.append((label, machine.nodes, result.cycles / 1e6,
                 f"{base / result.cycles:.2f}x",
                 f"{result.utilization:.0%}"))

print(format_table(
    ("tile", "cores", "Mcycles", "speedup vs 1x", "utilization"),
    rows, title=f"Blur-5x5, {FRAMES} frames, heterogeneous tiles",
))
print()
print("Note: the Cell-ish tiles beat homogeneous tiles of the same core"
      "\ncount on compute, but memory traffic (charged at hierarchy speed,"
      "\nnot core speed) caps the gain — the compute/communication ratio"
      "\nargument of paper §4.2, now per core type.")
