#!/usr/bin/env python
"""Picture-in-Picture: the paper's first application, end to end.

Builds the PiP application (background video + downscaled overlay video,
per-field pipelines, data-parallel slices) at a reduced geometry, runs it
on the threaded runtime, verifies the output against a directly computed
reference, and sweeps node counts on the simulator.

Run:  python examples/picture_in_picture.py
"""

import numpy as np

from repro.apps import build_pip, make_program
from repro.bench.report import format_table
from repro.components.filters import blend_plane, downscale_plane
from repro.components.registry import default_registry
from repro.components.video import synthetic_frame
from repro.hinch import ThreadedRuntime
from repro.spacecake import SimRuntime

WIDTH, HEIGHT, FACTOR, SLICES, FRAMES = 128, 96, 4, 4, 6

spec = build_pip(
    1, width=WIDTH, height=HEIGHT, factor=FACTOR, slices=SLICES,
    frames=FRAMES, collect=True,
)
program = make_program(spec, name="pip-demo")
print(f"PiP expanded: {len(program.components)} component instances")

# -- run on the threaded Hinch runtime -------------------------------------
result = ThreadedRuntime(
    program, default_registry(), nodes=3, pipeline_depth=3,
    max_iterations=FRAMES,
).run()
frames = result.components["sink"].ordered_frames()
print(f"produced {len(frames)} frames in {result.elapsed_seconds:.3f}s")

# -- verify against a straight-line reference ---------------------------------
bg = synthetic_frame(0, WIDTH, HEIGHT, seed=100)
pip = synthetic_frame(0, WIDTH, HEIGHT, seed=200)
small = downscale_plane(pip.y, FACTOR)
expected_y = blend_plane(bg.y, small, (16, 16))
assert np.array_equal(frames[0].y, expected_y), "output mismatch!"
print("frame 0 matches the hand-computed reference (Y plane) ✓")

# -- sweep node counts on the SpaceCAKE simulator -----------------------------
rows = []
base = None
for nodes in (1, 2, 4, 8):
    sim = SimRuntime(
        program, default_registry(), nodes=nodes, pipeline_depth=5,
        max_iterations=FRAMES,
    ).run()
    base = base or sim.cycles
    rows.append((nodes, sim.cycles / 1e6, f"{base / sim.cycles:.2f}x",
                 f"{sim.utilization:.0%}"))
print()
print(format_table(("nodes", "Mcycles", "speedup", "utilization"), rows,
                   title="PiP on the SpaceCAKE model"))
