#!/usr/bin/env python
"""Performance prediction: the SPC model vs the event-driven simulator.

The paper's framework (Fig. 1) routes XSPCL both to the runtime and to a
performance-estimation tool so "parallelization decisions" can be made
before running.  This example predicts the Blur application analytically
(PAMELA/SPC recursion + pipeline model), simulates it, and charts both —
then uses the prediction to pick a node count meeting a throughput goal.

Run:  python examples/performance_prediction.py
"""

from repro.apps import build_blur, make_program
from repro.bench.report import format_table, line_chart
from repro.components.registry import default_registry
from repro.prediction import predict_run, wcet_sequential, wcet_span
from repro.prediction.pamela import cost_model_leaf_fn
from repro.spacecake import SimRuntime
from repro.spacecake.costmodel import CostModel

FRAMES = 48

program = make_program(build_blur(5), name="blur5")
registry = default_registry()

# WCET bounds per iteration (paper §6: recursive graph traversal)
tree = program.to_sp_tree()
cost_model = CostModel(registry)
leaf_cost = cost_model_leaf_fn(cost_model, nodes=1)
print(f"per-iteration WCET bounds: span {wcet_span(tree, leaf_cost)/1e3:.0f} "
      f"kcycles <= T <= sequential {wcet_sequential(tree, leaf_cost)/1e3:.0f} "
      f"kcycles")

rows = []
series = {"predicted": [], "simulated": []}
for nodes in range(1, 10):
    predicted = predict_run(program, registry, nodes=nodes,
                            iterations=FRAMES, pipeline_depth=5)
    simulated = SimRuntime(program, registry, nodes=nodes, pipeline_depth=5,
                           max_iterations=FRAMES).run().cycles
    rows.append((nodes, predicted / 1e6, simulated / 1e6,
                 f"{(predicted / simulated - 1) * 100:+.1f}%"))
    series["predicted"].append((nodes, predicted / 1e6))
    series["simulated"].append((nodes, simulated / 1e6))

print()
print(format_table(("nodes", "predicted Mcyc", "simulated Mcyc", "error"),
                   rows, title=f"Blur-5x5, {FRAMES} frames"))
print()
print(line_chart(series, title="predicted vs simulated cycles",
                 x_label="nodes", y_label="Mcycles"))

# use the prediction for a deployment decision
TARGET_MCYCLES = 40.0
viable = [n for n, pred, _, _ in rows if pred < TARGET_MCYCLES]
print(f"\nsmallest node count predicted to finish under "
      f"{TARGET_MCYCLES:.0f} Mcycles: {viable[0] if viable else 'none'}")
