#!/usr/bin/env python
"""Quickstart: author, inspect, and run a tiny streaming application.

Covers the core workflow in ~60 lines:

1. build an XSPCL specification with the fluent Python API;
2. serialize it to XSPCL XML (the coordination language itself);
3. expand it to a Program and look at the task graph;
4. run it for real on the threaded Hinch runtime;
5. simulate it on a 4-core SpaceCAKE tile and compare.

Run:  python examples/quickstart.py
"""

from repro.components.registry import default_ports, default_registry
from repro.core import AppBuilder, expand, spec_to_xml
from repro.hinch import ThreadedRuntime
from repro.spacecake import SimRuntime

WIDTH, HEIGHT, FRAMES = 96, 64, 8

# 1. An application: synthesize video, blur its luminance in two sliced
#    phases (crossdep, like the paper's Blur), collect the result.
builder = AppBuilder()
main = builder.procedure("main")
main.component(
    "camera", "luma_source",
    streams={"output": "raw"},
    params={"width": WIDTH, "height": HEIGHT, "seed": 7},
)
with main.parallel("crossdep", n=4):
    with main.parblock():
        main.component(
            "blur_h", "blur_h_field",
            streams={"input": "raw", "output": "halfway"},
            params={"width": WIDTH, "height": HEIGHT, "size": 5},
        )
    with main.parblock():
        main.component(
            "blur_v", "blur_v_field",
            streams={"input": "halfway", "output": "smooth"},
            params={"width": WIDTH, "height": HEIGHT, "size": 5},
        )
main.component(
    "display", "plane_sink",
    streams={"input": "smooth"},
    params={"width": WIDTH, "height": HEIGHT, "collect": True},
)
spec = builder.build()

# 2. The same application as XSPCL XML (what a front-end would emit).
xml = spec_to_xml(spec)
print("--- XSPCL specification (first 12 lines) ---")
print("\n".join(xml.splitlines()[:12]))
print("...")

# 3. Expand: procedures inlined, slices replicated, graph built.
program = expand(spec, default_ports(), name="quickstart")
pg = program.build_graph()
print(f"\nexpanded to {len(program.components)} component instances, "
      f"{len(pg.graph)} graph nodes, {pg.graph.num_edges} edges")

# 4. Run for real on 2 worker threads.
runtime = ThreadedRuntime(
    program, default_registry(), nodes=2, pipeline_depth=3,
    max_iterations=FRAMES,
)
result = runtime.run()
frames = result.components["display"].ordered_planes()
print(f"threaded run: {result.completed_iterations} frames in "
      f"{result.elapsed_seconds:.3f}s; first output pixel = {frames[0][0, 0]}")

# 5. Simulate the same program on a 4-core SpaceCAKE tile.
sim = SimRuntime(
    program, default_registry(), nodes=4, pipeline_depth=3,
    max_iterations=FRAMES,
).run()
print(f"simulated on 4 nodes: {sim.cycles / 1e6:.2f} Mcycles, "
      f"utilization {sim.utilization:.0%}")
